"""Streaming communication-predicate monitors (the *online* dual).

Every predicate of Table 1 / Section 4.2 exists here a second time, as a
:class:`PredicateMonitor` that consumes one round of bitmask heard-of sets
at a time and maintains, in O(n) state (plus, for ``P_restr_otr``, one
integer pair per distinct open candidate Pi0 -- at most one new candidate
per round, a handful in practice), exactly the verdict the
whole-collection checker of :mod:`repro.predicates.static` would reach on
the prefix observed so far.  Nothing is ever re-scanned and the heard-of
collection is never materialised, so sweeps can measure *when* and *for how
long* predicates hold over million-round runs at O(window * n) memory --
the monitoring analogue of how disruption-tolerant networks watch
connectivity predicates over live contact windows.

Three pieces cooperate:

* the monitors themselves -- each consumes ``observe(round, masks)`` with
  strictly consecutive rounds (1, 2, 3, ...) and exposes the cumulative
  ``verdict`` plus a per-round *good condition* (a space-uniform round, a
  kernel round, a uniform quorum round) from which hold/violation
  run-lengths are accumulated;
* :class:`RoundCollator` -- a ring buffer of per-round mask vectors that
  assembles the per-record stream of the round engine (lockstep rounds
  arrive process by process; step-backed rounds arrive out of order and
  with skips) into completed in-order rounds, force-flushing rounds that
  fall out of its window with empty heard-of sets -- the same default the
  recorded collection would report for them;
* :class:`MonitorBank` -- the engine-facing observer: it implements the
  :class:`~repro.rounds.engine.RoundObserver` hook, feeds the collator,
  drives the monitors and evaluates :class:`StopPolicy` early-stop rules
  ("stop once a predicate held for k consecutive rounds", "stop at the
  first violation after a decision").

The duality is property-tested: for every monitor, replaying a recorded
collection through :func:`monitor_collection` yields the same verdict as
the whole-collection checker on that collection.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.types import validate_process_subset
from ..rounds.bitmask import bit_count, full_mask, iter_bits, mask_of
from .reports import PredicateReport
from .static import otr_threshold

#: Rounds the collator keeps pending before force-flushing the oldest one.
#: Step-level runs can skew processes by many rounds (a stalled process may
#: finish round r long after its peers); rounds older than the window are
#: completed with empty heard-of sets, matching the collection default.
DEFAULT_WINDOW = 1024

ProcessId = int
Round = int


def _pi0_mask(pi0: Optional[Iterable[ProcessId]], n: int) -> int:
    """The bitmask of *pi0* (default: the full process set), ids validated."""
    if pi0 is None:
        return full_mask(n)
    return mask_of(validate_process_subset(pi0, n))


class PredicateMonitor(abc.ABC):
    """One predicate, evaluated online over a stream of per-round mask vectors.

    ``observe(round, masks)`` must be called with strictly consecutive
    rounds starting at 1 (the :class:`RoundCollator` guarantees this);
    *masks* is the dense per-process heard-of vector of that round, with
    ``0`` for processes that recorded nothing -- the same default the
    whole-collection checkers see through ``HOCollection.ho_mask``.

    Subclasses define the cumulative :attr:`verdict` (equal to the
    whole-collection checker on the observed prefix) and the per-round
    *good condition* feeding the run-length statistics of the report.
    """

    name: str = "predicate"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self.n = n
        self._full = full_mask(n)
        self._rounds_observed = 0
        self._good_rounds = 0
        self._first_good_round: Optional[Round] = None
        self._longest_good_run = 0
        self._longest_bad_run = 0
        self._current_good_run = 0
        self._current_bad_run = 0
        self._first_hold_round: Optional[Round] = None
        self._last_round_good = False

    # ------------------------------------------------------------------ #
    # streaming entry point
    # ------------------------------------------------------------------ #

    def observe(self, round: Round, masks: Sequence[int]) -> None:
        """Consume one round's heard-of vector (rounds must arrive in order)."""
        if round != self._rounds_observed + 1:
            raise ValueError(
                f"monitor {self.name!r} expects round {self._rounds_observed + 1}, "
                f"got {round} (feed rounds consecutively, e.g. via RoundCollator)"
            )
        good = self._round_good(masks)
        self._advance(round, masks, good)
        self._rounds_observed = round
        if good:
            self._good_rounds += 1
            if self._first_good_round is None:
                self._first_good_round = round
            self._current_good_run += 1
            self._current_bad_run = 0
            self._longest_good_run = max(self._longest_good_run, self._current_good_run)
        else:
            self._current_bad_run += 1
            self._current_good_run = 0
            self._longest_bad_run = max(self._longest_bad_run, self._current_bad_run)
        self._last_round_good = good
        if self._first_hold_round is None and self.verdict:
            self._first_hold_round = round

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _round_good(self, masks: Sequence[int]) -> bool:
        """The per-round good condition (documented per subclass)."""

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        """Update the cumulative verdict state (default: nothing beyond *good*)."""

    @property
    @abc.abstractmethod
    def verdict(self) -> bool:
        """Whether the predicate holds on the prefix of rounds observed so far."""

    # ------------------------------------------------------------------ #
    # introspection / report
    # ------------------------------------------------------------------ #

    @property
    def rounds_observed(self) -> int:
        return self._rounds_observed

    @property
    def current_good_run(self) -> int:
        """Length of the good-round run ending at the last observed round."""
        return self._current_good_run

    @property
    def last_round_good(self) -> bool:
        """Whether the last observed round satisfied the good condition."""
        return self._last_round_good

    def report(self) -> PredicateReport:
        """The compact summary of everything observed so far."""
        return PredicateReport(
            name=self.name,
            rounds_observed=self._rounds_observed,
            good_rounds=self._good_rounds,
            first_good_round=self._first_good_round,
            longest_good_run=self._longest_good_run,
            longest_bad_run=self._longest_bad_run,
            first_hold_round=self._first_hold_round,
            holds=self.verdict,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self.n}, rounds={self._rounds_observed})"


class POtrMonitor(PredicateMonitor):
    """Streaming ``P_otr`` (Table 1, eq. 1).

    Good condition: a *uniform quorum round* -- every process has the same
    heard-of set and its cardinality exceeds ``2n/3``.  The cumulative
    verdict uses the earliest such round as the witness ``r0`` (any witness
    implies the earliest one works, since the second clause only needs
    rounds strictly after ``r0``) and then waits for every process to hear
    ``> 2n/3`` senders in some later round.  State: two integers.
    """

    name = "p_otr"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._threshold = otr_threshold(n)
        self._u_min: Optional[Round] = None
        self._later_big = 0  # processes with a > 2n/3 heard-of set after u_min

    def _round_good(self, masks: Sequence[int]) -> bool:
        first = masks[0]
        if bit_count(first) < self._threshold:
            return False
        return all(mask == first for mask in masks)

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        if self._later_big == self._full:
            return  # verdict is permanently True; nothing left to learn
        if self._u_min is not None:
            threshold = self._threshold
            later = self._later_big
            for p in range(self.n):
                if bit_count(masks[p]) >= threshold:
                    later |= 1 << p
            self._later_big = later
        elif good:
            self._u_min = round

    @property
    def verdict(self) -> bool:
        return self._u_min is not None and self._later_big == self._full


class PRestrOtrMonitor(PredicateMonitor):
    """Streaming ``P_restr_otr`` (Table 1, eq. 2).

    Good condition: the round hosts a *candidate* Pi0 -- a set of more than
    ``2n/3`` processes that all heard exactly each other.  The verdict
    tracks open candidates as ``{Pi0 mask: pending mask}`` where *pending*
    are the Pi0 members still lacking a later round with ``HO >= Pi0``;
    a candidate whose pending mask empties is a witness.  At most one new
    candidate can appear per round (two would have to be disjoint sets of
    more than ``2n/3`` processes each) and duplicates keep their earliest
    occurrence, so the candidate table stays tiny in practice -- but an
    adversary minting a fresh never-completed candidate every round does
    grow it by one integer pair per round; evicting entries would break
    verdict equivalence, so the table is deliberately unbounded.
    """

    name = "p_restr_otr"

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._threshold = otr_threshold(n)
        self._candidates: Dict[int, int] = {}
        self._satisfied = False
        self._last_candidate = 0

    def _candidate_of(self, masks: Sequence[int]) -> int:
        seen = set()
        for p in range(self.n):
            mask = masks[p]
            if not (mask >> p) & 1 or mask in seen:
                continue
            seen.add(mask)
            if bit_count(mask) < self._threshold:
                continue
            if all(masks[q] == mask for q in iter_bits(mask)):
                return mask
        return 0

    def _round_good(self, masks: Sequence[int]) -> bool:
        # Cache the scan result: observe() calls _round_good then _advance
        # on the same masks, and the candidate scan is the most expensive
        # per-round monitor operation.
        self._last_candidate = self._candidate_of(masks)
        return self._last_candidate != 0

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        if self._satisfied:
            return
        completed = []
        for candidate, pending in self._candidates.items():
            remaining = pending
            for p in iter_bits(pending):
                if masks[p] & candidate == candidate:
                    remaining &= ~(1 << p)
            if remaining == 0:
                self._satisfied = True
                completed.append(candidate)
            else:
                self._candidates[candidate] = remaining
        if self._satisfied:
            self._candidates.clear()
            return
        if good:
            candidate = self._last_candidate
            if candidate and candidate not in self._candidates:
                # The second clause needs rounds strictly after r0, so the
                # pending mask starts full and this round does not clear it.
                self._candidates[candidate] = candidate

    @property
    def verdict(self) -> bool:
        return self._satisfied


class PSuMonitor(PredicateMonitor):
    """Streaming ``P_su(Pi0, r1, r2)`` (space uniformity over a round window).

    Good condition: the round is space uniform for Pi0 (every ``p in Pi0``
    has ``HO(p, r) = Pi0``), counted over *all* observed rounds regardless
    of the window.  The verdict restricts to the window: with
    ``last_round=None`` the window is open-ended (``r2 = max_round``, the
    "uniform throughout the run so far" reading); a fixed window that
    extends beyond the observed rounds treats the missing rounds as empty
    heard-of sets, exactly like the whole-collection checker.
    """

    name = "p_su"

    def __init__(
        self,
        n: int,
        pi0: Optional[Iterable[ProcessId]] = None,
        first_round: Round = 1,
        last_round: Optional[Round] = None,
    ) -> None:
        super().__init__(n)
        self.pi0_mask = _pi0_mask(pi0, n)
        self.first_round = first_round
        self.last_round = last_round
        self._ok = True

    def _in_window(self, round: Round) -> bool:
        return self.first_round <= round and (
            self.last_round is None or round <= self.last_round
        )

    def _round_good(self, masks: Sequence[int]) -> bool:
        pi0 = self.pi0_mask
        return all(masks[p] == pi0 for p in iter_bits(pi0))

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        if self._in_window(round) and not good:
            self._ok = False

    @property
    def verdict(self) -> bool:
        if self.first_round <= 0:
            return False
        if self.last_round is not None and self.last_round < self.first_round:
            return False
        last = self.last_round if self.last_round is not None else self._rounds_observed
        if last < self.first_round:
            return False
        if self.pi0_mask == 0:
            return True  # vacuously space uniform for the empty set
        if self.last_round is not None and self._rounds_observed < self.last_round:
            return False  # unobserved window rounds have empty heard-of sets
        return self._ok


class PKernelMonitor(PSuMonitor):
    """Streaming ``P_k(Pi0, r1, r2)`` (kernel rounds over a round window).

    Good condition: the round is a *kernel round* for Pi0 (every
    ``p in Pi0`` has ``HO(p, r) >= Pi0``); the window semantics are those
    of :class:`PSuMonitor`.
    """

    name = "p_k"

    def _round_good(self, masks: Sequence[int]) -> bool:
        pi0 = self.pi0_mask
        return all(masks[p] & pi0 == pi0 for p in iter_bits(pi0))


class P2OtrMonitor(PredicateMonitor):
    """Streaming ``P_2otr(Pi0)``: a space-uniform round immediately followed by a kernel round.

    Good condition: the round is a kernel round for Pi0 (space-uniform
    rounds are kernel rounds, so this counts every round usable in the
    pattern).  The verdict fires, and stays true, once a kernel round
    directly follows a space-uniform round.  State: two booleans.
    """

    name = "p_2otr"

    def __init__(self, n: int, pi0: Optional[Iterable[ProcessId]] = None) -> None:
        super().__init__(n)
        self.pi0_mask = _pi0_mask(pi0, n)
        self._prev_su = False
        self._satisfied = False

    def _space_uniform(self, masks: Sequence[int]) -> bool:
        pi0 = self.pi0_mask
        return all(masks[p] == pi0 for p in iter_bits(pi0))

    def _round_good(self, masks: Sequence[int]) -> bool:
        pi0 = self.pi0_mask
        return all(masks[p] & pi0 == pi0 for p in iter_bits(pi0))

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        if self._prev_su and good:
            self._satisfied = True
        self._prev_su = self._space_uniform(masks)

    @property
    def verdict(self) -> bool:
        return self._satisfied


class P11OtrMonitor(P2OtrMonitor):
    """Streaming ``P_1/1otr(Pi0)``: a space-uniform round, then (eventually) a kernel round.

    Same good condition as :class:`P2OtrMonitor`; the verdict fires once
    any kernel round follows any strictly earlier space-uniform round
    (the earliest space-uniform round subsumes all later witnesses).
    """

    name = "p_1/1otr"

    def __init__(self, n: int, pi0: Optional[Iterable[ProcessId]] = None) -> None:
        super().__init__(n, pi0)
        self._su_seen = False

    def _advance(self, round: Round, masks: Sequence[int], good: bool) -> None:
        if self._su_seen and good:
            self._satisfied = True
        if self._space_uniform(masks):
            self._su_seen = True


# --------------------------------------------------------------------------- #
# assembling the engine's record stream into in-order rounds
# --------------------------------------------------------------------------- #


class RoundCollator:
    """A ring buffer turning per-record mask updates into completed rounds.

    ``add(process, round, mask)`` returns the rounds that completed as a
    result, in strictly increasing order with no gaps: a round is emitted
    when all *n* processes reported it, or when it falls *window* rounds
    behind the newest round seen (missing processes then count as having
    heard nobody, matching ``HOCollection.ho_mask``'s default).  Records
    for rounds already emitted are counted in :attr:`late_records` and
    otherwise ignored -- widen the window if that matters.  Pending memory
    is bounded by O(window * n) masks.
    """

    __slots__ = (
        "n", "window", "_completion", "_pending", "_seen", "_next", "_max_seen", "late_records"
    )

    def __init__(
        self, n: int, window: int = DEFAULT_WINDOW, completion_mask: Optional[int] = None
    ) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        self.n = n
        self.window = window
        # *completion_mask* narrows "all n processes reported" to a subset:
        # step-level runs under crash-stop have processes that stop
        # reporting forever, and waiting out the window on every round would
        # defer all monitoring to the end of the run (no live early stop).
        # Processes outside the mask still contribute their masks when they
        # report in time; a record arriving *after* the completing subset
        # moved past its round is dropped (and counted in late_records), so
        # the stream may under-report a laggard relative to the recorded
        # collection.  Predicates scoped to the completing subset never read
        # those masks; verdicts of unscoped predicates (P_otr, P_restr_otr)
        # become *anytime* under a narrowed mask -- check late_records == 0
        # before equating them with the whole-collection checker.
        self._completion = full_mask(n) if completion_mask is None else completion_mask
        self._pending: Dict[Round, List[int]] = {}
        self._seen: Dict[Round, int] = {}
        self._next: Round = 1
        self._max_seen: Round = 0
        self.late_records = 0

    def add(self, process: ProcessId, round: Round, mask: int) -> List[Tuple[Round, List[int]]]:
        """Record one (process, round) heard-of mask; return newly completed rounds."""
        if round < self._next:
            self.late_records += 1
            return []
        row = self._pending.get(round)
        if row is None:
            row = [0] * self.n
            self._pending[round] = row
            self._seen[round] = 0
        row[process] = mask
        self._seen[round] |= 1 << process
        if round > self._max_seen:
            self._max_seen = round
        return self._flush()

    def _emit(self, round: Round) -> Tuple[Round, List[int]]:
        masks = self._pending.pop(round, None)
        self._seen.pop(round, None)
        self._next = round + 1
        return round, masks if masks is not None else [0] * self.n

    def _flush(self) -> List[Tuple[Round, List[int]]]:
        out: List[Tuple[Round, List[int]]] = []
        completion = self._completion
        while self._next <= self._max_seen:
            round = self._next
            seen = self._seen.get(round, 0)
            if seen & completion == completion or round <= self._max_seen - self.window:
                out.append(self._emit(round))
            else:
                break
        return out

    def drain(self) -> List[Tuple[Round, List[int]]]:
        """Complete every pending round (end of run), in order."""
        return [self._emit(round) for round in range(self._next, self._max_seen + 1)]


# --------------------------------------------------------------------------- #
# early-stop policies
# --------------------------------------------------------------------------- #


class StopPolicy(abc.ABC):
    """A rule deciding, after each completed round, whether the run may stop."""

    @abc.abstractmethod
    def update(self, bank: "MonitorBank", round: Round) -> bool:
        """Return True to request a stop (the request is sticky in the bank)."""


class StopAfterHeld(StopPolicy):
    """Stop once a monitor's good condition held for *rounds* consecutive rounds.

    *predicate* restricts the policy to the monitor with that name;
    by default any monitor's streak triggers it.
    """

    def __init__(self, rounds: int, predicate: Optional[str] = None) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be at least 1, got {rounds}")
        self.rounds = rounds
        self.predicate = predicate

    def update(self, bank: "MonitorBank", round: Round) -> bool:
        return any(
            monitor.current_good_run >= self.rounds
            for monitor in bank.monitors
            if self.predicate is None or monitor.name == self.predicate
        )


class StopOnViolationAfterDecision(StopPolicy):
    """Stop at the first good-condition violation after any decision was observed."""

    def update(self, bank: "MonitorBank", round: Round) -> bool:
        if not bank.decided:
            return False
        return any(not monitor.last_round_good for monitor in bank.monitors)


# --------------------------------------------------------------------------- #
# the engine-facing observer
# --------------------------------------------------------------------------- #


class MonitorBank:
    """Feeds a set of monitors from the round engine's record stream.

    Implements the :class:`~repro.rounds.engine.RoundObserver` hook: attach
    it to a :class:`~repro.rounds.engine.RoundEngine` (or an
    :class:`~repro.core.machine.HOMachine` / predimpl stack builder) via
    ``observers=[bank]`` and read :meth:`reports` when the run is over.
    ``stop_requested`` turns true (and stays true) once any stop policy
    fires; the engine's owners poll it between rounds.
    """

    def __init__(
        self,
        n: int,
        monitors: Sequence[PredicateMonitor],
        stop_policies: Sequence[StopPolicy] = (),
        window: int = DEFAULT_WINDOW,
        completion_scope: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        self.n = n
        self.monitors = list(monitors)
        self.stop_policies = list(stop_policies)
        completion_mask = None if completion_scope is None else _pi0_mask(completion_scope, n)
        self._collator = RoundCollator(n, window=window, completion_mask=completion_mask)
        self._stop = False
        self.decided = False
        self._finalized = False

    # -- RoundObserver protocol ---------------------------------------- #

    def on_record(self, record) -> None:
        """Consume one engine :class:`~repro.rounds.record.RoundRecord`."""
        if record.decision is not None:
            self.decided = True
        for round, masks in self._collator.add(record.process, record.round, record.ho_mask):
            self.observe_round(round, masks)

    @property
    def stop_requested(self) -> bool:
        return self._stop

    # -- direct feeding / results -------------------------------------- #

    def observe_round(
        self, round: Round, masks: Sequence[int], evaluate_policies: bool = True
    ) -> None:
        """Feed one completed round to every monitor (and, live, the stop policies)."""
        for monitor in self.monitors:
            monitor.observe(round, masks)
        if evaluate_policies:
            for policy in self.stop_policies:
                if policy.update(self, round):
                    self._stop = True

    @property
    def late_records(self) -> int:
        """Records that arrived for rounds already flushed past the window."""
        return self._collator.late_records

    def finalize(self) -> None:
        """Flush rounds still pending in the collator (end of run); idempotent.

        Drained rounds bypass the stop policies: the run is already over,
        and a policy firing on the drained tail would misreport a
        full-horizon run as stopped early.
        """
        if self._finalized:
            return
        self._finalized = True
        for round, masks in self._collator.drain():
            self.observe_round(round, masks, evaluate_policies=False)

    def reports(self) -> Dict[str, PredicateReport]:
        """Finalize and return one report per monitor, keyed by predicate name."""
        self.finalize()
        return {monitor.name: monitor.report() for monitor in self.monitors}

    def reports_json(self) -> Dict[str, Dict]:
        """The reports in their JSON form (what sweep wire records carry)."""
        return {name: report.to_json_dict() for name, report in self.reports().items()}


def monitor_collection(
    collection, monitors: Sequence[PredicateMonitor]
) -> Dict[str, PredicateReport]:
    """Replay a recorded :class:`~repro.core.types.HOCollection` through monitors.

    The bridge between the two duals: feeding the collection round by round
    must reproduce exactly the whole-collection checkers' verdicts (this is
    what the equivalence property tests assert).  Useful for consumers that
    already hold a trace and want report-shaped statistics.
    """
    n = collection.n
    bank = MonitorBank(n, monitors)
    for round in collection.rounds():
        bank.observe_round(round, [collection.ho_mask(p, round) for p in range(n)])
    return bank.reports()


# --------------------------------------------------------------------------- #
# name-based construction (the CLI surface)
# --------------------------------------------------------------------------- #

#: Canonical monitorable predicate names, as accepted by :func:`build_monitor`
#: and the ``--predicates`` CLI flag.
MONITOR_NAMES = ("p_otr", "p_restr_otr", "p_su", "p_k", "p_2otr", "p_1/1otr")

_ALIASES = {"p_11otr": "p_1/1otr", "p_1_1otr": "p_1/1otr", "p1/1otr": "p_1/1otr"}


def canonical_predicate_name(name: str) -> str:
    """Normalise *name* to its canonical form; raises on unknown predicates."""
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in MONITOR_NAMES:
        raise ValueError(
            f"unknown predicate {name!r}; known: {', '.join(MONITOR_NAMES)}"
        )
    return key


def build_monitor_bank(
    n: int,
    predicates: Sequence[str],
    pi0: Optional[Iterable[ProcessId]] = None,
    stop_after_held: Optional[int] = None,
    window: int = DEFAULT_WINDOW,
    completion_scope: Optional[Iterable[ProcessId]] = None,
) -> MonitorBank:
    """One bank with a monitor per name in *predicates* -- the scenario-runner helper.

    *pi0* scopes the Pi0-parameterised predicates (typically the fault
    model's surviving processes); *stop_after_held* attaches a
    :class:`StopAfterHeld` policy (must be >= 1 when given).
    *completion_scope* narrows the collator's round-completion quorum for
    step-level runs whose out-of-scope processes stop reporting forever.
    """
    if not predicates:
        raise ValueError("at least one predicate name is required")
    stop_policies: List[StopPolicy] = []
    if stop_after_held is not None:
        stop_policies.append(StopAfterHeld(stop_after_held))
    return MonitorBank(
        n,
        [build_monitor(name, n, pi0=pi0) for name in predicates],
        stop_policies=stop_policies,
        window=window,
        completion_scope=completion_scope,
    )


def build_monitor(
    name: str,
    n: int,
    pi0: Optional[Iterable[ProcessId]] = None,
    first_round: Round = 1,
    last_round: Optional[Round] = None,
) -> PredicateMonitor:
    """Build the streaming monitor for predicate *name* (see :data:`MONITOR_NAMES`).

    *pi0* parameterises the Pi0-scoped predicates (default: the full
    process set); *first_round* / *last_round* only apply to the windowed
    ``p_su`` / ``p_k`` forms (open-ended by default).
    """
    key = canonical_predicate_name(name)
    if key == "p_otr":
        return POtrMonitor(n)
    if key == "p_restr_otr":
        return PRestrOtrMonitor(n)
    if key == "p_su":
        return PSuMonitor(n, pi0, first_round=first_round, last_round=last_round)
    if key == "p_k":
        return PKernelMonitor(n, pi0, first_round=first_round, last_round=last_round)
    if key == "p_2otr":
        return P2OtrMonitor(n, pi0)
    return P11OtrMonitor(n, pi0)


__all__ = [
    "DEFAULT_WINDOW",
    "MONITOR_NAMES",
    "PredicateMonitor",
    "POtrMonitor",
    "PRestrOtrMonitor",
    "PSuMonitor",
    "PKernelMonitor",
    "P2OtrMonitor",
    "P11OtrMonitor",
    "RoundCollator",
    "StopPolicy",
    "StopAfterHeld",
    "StopOnViolationAfterDecision",
    "MonitorBank",
    "monitor_collection",
    "canonical_predicate_name",
    "build_monitor",
    "build_monitor_bank",
]
