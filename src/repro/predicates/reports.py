"""The compact outcome of monitoring one predicate over one run.

A :class:`PredicateReport` is what a streaming monitor leaves behind once a
run is over: when the predicate first held, how long its per-round good
condition held and was violated for, and the final verdict.  It is the
trace-free currency of predicate measurement -- small, picklable and
JSON-round-trippable, so it rides inside the sweep harness's slim wire
records (``repro-sweep/3``) where a full heard-of collection never could.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class PredicateReport:
    """What one :class:`~repro.predicates.monitors.PredicateMonitor` observed.

    Two signals are summarised.  The *cumulative verdict* is the predicate
    itself, evaluated on the prefix of rounds seen so far (it equals the
    whole-collection checker on the recorded collection): ``holds`` is its
    final value and ``first_hold_round`` the first prefix on which it was
    true.  The *per-round good condition* is the predicate's notion of a
    good round (a space-uniform round, a kernel round, a uniform quorum
    round -- see each monitor's docstring): ``good_rounds``, the run
    lengths and ``satisfaction`` summarise how often and for how long the
    environment was good.
    """

    name: str
    rounds_observed: int
    good_rounds: int
    first_good_round: Optional[int]
    longest_good_run: int
    longest_bad_run: int
    first_hold_round: Optional[int]
    holds: bool

    @property
    def satisfaction(self) -> Optional[float]:
        """Fraction of observed rounds whose good condition held (None if no rounds)."""
        if self.rounds_observed == 0:
            return None
        return self.good_rounds / self.rounds_observed

    def to_json_dict(self) -> Dict[str, Any]:
        """The JSON form carried by sweep wire records and JSONL sinks."""
        return {
            "name": self.name,
            "rounds_observed": self.rounds_observed,
            "good_rounds": self.good_rounds,
            "first_good_round": self.first_good_round,
            "longest_good_run": self.longest_good_run,
            "longest_bad_run": self.longest_bad_run,
            "first_hold_round": self.first_hold_round,
            "holds": self.holds,
            "satisfaction": self.satisfaction,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "PredicateReport":
        """Rebuild a report from its JSON form (``satisfaction`` is derived)."""
        return cls(
            name=payload["name"],
            rounds_observed=payload["rounds_observed"],
            good_rounds=payload["good_rounds"],
            first_good_round=payload.get("first_good_round"),
            longest_good_run=payload["longest_good_run"],
            longest_bad_run=payload["longest_bad_run"],
            first_hold_round=payload.get("first_hold_round"),
            holds=payload["holds"],
        )


__all__ = ["PredicateReport"]
