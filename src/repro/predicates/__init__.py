"""Communication predicates: whole-collection checkers and streaming monitors.

The paper's central object -- the communication predicate of a ``<A, P>``
pair (Section 3.1, Table 1) -- lives here in two dual forms:

* :mod:`repro.predicates.static` -- the classic *whole-collection* checkers,
  evaluated over a fully recorded :class:`~repro.core.types.HOCollection`
  (``P.holds(collection)``);
* :mod:`repro.predicates.monitors` -- *streaming* monitors that consume one
  round of bitmask heard-of sets at a time in O(window * n) memory, reach
  the same verdicts online, accumulate hold/violation run-lengths into
  compact :class:`~repro.predicates.reports.PredicateReport` objects, and
  drive early-stop policies through the round engine's observer hook;
* :mod:`repro.predicates.batch` -- the replica-vectorised duals of the
  streaming monitors, consuming ``(R, n, ceil(n/64))`` uint64 mask arrays
  for all R replicas of a batch at once (numpy-only; imported lazily by the
  batch execution backend, hence not re-exported here).

``repro.core.predicates`` remains as an import shim over the static half
(mirroring the ``core.adversary`` -> ``repro.adversaries`` precedent).
"""

from .monitors import (
    DEFAULT_WINDOW,
    MONITOR_NAMES,
    MonitorBank,
    P2OtrMonitor,
    P11OtrMonitor,
    PKernelMonitor,
    POtrMonitor,
    PRestrOtrMonitor,
    PSuMonitor,
    PredicateMonitor,
    RoundCollator,
    StopAfterHeld,
    StopOnViolationAfterDecision,
    StopPolicy,
    build_monitor,
    build_monitor_bank,
    canonical_predicate_name,
    monitor_collection,
)
from .reports import PredicateReport
from .static import (
    And,
    CommunicationPredicate,
    ExistsPi0,
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    Not,
    Or,
    P2Otr,
    P11Otr,
    PKernel,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    PerRoundCardinality,
    TruePredicate,
    UniformRoundExists,
    exists_p2otr,
    exists_p11otr,
    find_pk_window,
    find_psu_window,
    otr_threshold,
    pk_holds,
    psu_holds,
)

__all__ = [
    # whole-collection checkers
    "CommunicationPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PerRoundCardinality",
    "MajorityEveryRound",
    "NonEmptyKernelEveryRound",
    "UniformRoundExists",
    "POtr",
    "PRestrOtr",
    "PSpaceUniform",
    "PKernel",
    "P2Otr",
    "P11Otr",
    "ExistsPi0",
    "exists_p2otr",
    "exists_p11otr",
    "psu_holds",
    "pk_holds",
    "find_psu_window",
    "find_pk_window",
    "otr_threshold",
    # streaming monitors
    "DEFAULT_WINDOW",
    "MONITOR_NAMES",
    "PredicateMonitor",
    "POtrMonitor",
    "PRestrOtrMonitor",
    "PSuMonitor",
    "PKernelMonitor",
    "P2OtrMonitor",
    "P11OtrMonitor",
    "RoundCollator",
    "MonitorBank",
    "StopPolicy",
    "StopAfterHeld",
    "StopOnViolationAfterDecision",
    "monitor_collection",
    "canonical_predicate_name",
    "build_monitor",
    "build_monitor_bank",
    # reports
    "PredicateReport",
]
