"""Whole-collection communication predicates (the *batch* dual).

Communication predicates (Section 3.1 and Table 1 of the paper) are
predicates over the collection of heard-of sets ``(HO(p, r))_{p in Pi, r>0}``.
A problem is solved by a pair ``<A, P>`` of an HO algorithm and a
communication predicate: the predicate captures *everything* the algorithm
requires from the environment, uniformly covering static/dynamic and
permanent/transient faults.

This module implements the *whole-collection* form of every predicate --
evaluation over a fully recorded :class:`repro.core.types.HOCollection`:

* the predicates of Table 1: ``P_otr`` (eq. 1) and ``P_restr_otr`` (eq. 2),
* the auxiliary predicates of Section 4.2: ``P_su`` (space uniformity),
  ``P_k`` (kernel), ``P_2otr`` and ``P_1/1otr``,
* generic building blocks (per-round majority, non-empty kernel, uniform
  rounds, eventual-kernel predicates) and boolean combinators.

Predicates are evaluated over *finite* recorded collections; existential
round quantifiers range over the recorded window ``1 .. max_round``.

Every Table 1 / Section 4.2 predicate also has a *streaming* dual in
:mod:`repro.predicates.monitors` that consumes one round of bitmask HO sets
at a time in O(window) memory and reaches the same verdict without ever
materialising the collection.
"""

from __future__ import annotations

import abc
from typing import Callable, FrozenSet, Iterable, Optional

from ..rounds.bitmask import bit_count, iter_bits, mask_of
from ..core.types import HOCollection, HOSet, ProcessId, Round, validate_process_subset


# --------------------------------------------------------------------------- #
# Plain-function forms of Psu / Pk, shared by the predicate classes, the
# benchmark harness and the analysis layer.  Both run on the collection's
# bitmask hot path: one integer comparison per (process, round).
# --------------------------------------------------------------------------- #


def psu_holds(
    collection: HOCollection,
    pi0: Iterable[ProcessId],
    first_round: Round,
    last_round: Round,
) -> bool:
    """``P_su(Pi0, r1, r2)``: every round in ``[r1, r2]`` is space uniform for Pi0.

    Formally: for all ``p in Pi0`` and ``r in [r1, r2]``, ``HO(p, r) = Pi0``.
    """
    pi0_mask = mask_of(validate_process_subset(pi0, collection.n))
    if first_round <= 0 or last_round < first_round:
        return False
    return all(
        collection.ho_mask(p, r) == pi0_mask
        for r in range(first_round, last_round + 1)
        for p in iter_bits(pi0_mask)
    )


def pk_holds(
    collection: HOCollection,
    pi0: Iterable[ProcessId],
    first_round: Round,
    last_round: Round,
) -> bool:
    """``P_k(Pi0, r1, r2)``: Pi0 is in the kernel of every round in ``[r1, r2]``.

    Formally: for all ``p in Pi0`` and ``r in [r1, r2]``, ``HO(p, r) >= Pi0``.
    """
    pi0_mask = mask_of(validate_process_subset(pi0, collection.n))
    if first_round <= 0 or last_round < first_round:
        return False
    return all(
        collection.ho_mask(p, r) & pi0_mask == pi0_mask
        for r in range(first_round, last_round + 1)
        for p in iter_bits(pi0_mask)
    )


def find_psu_window(
    collection: HOCollection,
    pi0: Iterable[ProcessId],
    length: int,
    start_round: Round = 1,
) -> Optional[Round]:
    """First round ``r >= start_round`` such that ``P_su(Pi0, r, r+length-1)`` holds."""
    pi0_set = validate_process_subset(pi0, collection.n)
    for r in range(start_round, collection.max_round - length + 2):
        if psu_holds(collection, pi0_set, r, r + length - 1):
            return r
    return None


def find_pk_window(
    collection: HOCollection,
    pi0: Iterable[ProcessId],
    length: int,
    start_round: Round = 1,
) -> Optional[Round]:
    """First round ``r >= start_round`` such that ``P_k(Pi0, r, r+length-1)`` holds."""
    pi0_set = validate_process_subset(pi0, collection.n)
    for r in range(start_round, collection.max_round - length + 2):
        if pk_holds(collection, pi0_set, r, r + length - 1):
            return r
    return None


def otr_threshold(n: int) -> int:
    """Smallest cardinality strictly larger than ``2n/3`` (the OneThirdRule quorum)."""
    return (2 * n) // 3 + 1


# --------------------------------------------------------------------------- #
# Predicate classes
# --------------------------------------------------------------------------- #


class CommunicationPredicate(abc.ABC):
    """A predicate over a heard-of collection.

    Subclasses implement :meth:`holds`.  Instances are lightweight and
    reusable across runs.
    """

    #: Short identifier used in reports.
    name: str = "predicate"

    @abc.abstractmethod
    def holds(self, collection: HOCollection) -> bool:
        """Whether the predicate holds on the (finite) recorded collection."""

    # Boolean combinators -------------------------------------------------- #

    def __and__(self, other: "CommunicationPredicate") -> "And":
        return And(self, other)

    def __or__(self, other: "CommunicationPredicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name})"


class And(CommunicationPredicate):
    """Conjunction of communication predicates."""

    def __init__(self, *parts: CommunicationPredicate) -> None:
        if not parts:
            raise ValueError("And requires at least one predicate")
        self.parts = parts
        self.name = " & ".join(p.name for p in parts)

    def holds(self, collection: HOCollection) -> bool:
        return all(p.holds(collection) for p in self.parts)


class Or(CommunicationPredicate):
    """Disjunction of communication predicates."""

    def __init__(self, *parts: CommunicationPredicate) -> None:
        if not parts:
            raise ValueError("Or requires at least one predicate")
        self.parts = parts
        self.name = " | ".join(p.name for p in parts)

    def holds(self, collection: HOCollection) -> bool:
        return any(p.holds(collection) for p in self.parts)


class Not(CommunicationPredicate):
    """Negation of a communication predicate."""

    def __init__(self, inner: CommunicationPredicate) -> None:
        self.inner = inner
        self.name = f"not({inner.name})"

    def holds(self, collection: HOCollection) -> bool:
        return not self.inner.holds(collection)


class TruePredicate(CommunicationPredicate):
    """The trivial predicate: always holds (the fully asynchronous environment)."""

    name = "true"

    def holds(self, collection: HOCollection) -> bool:
        return True


class PerRoundCardinality(CommunicationPredicate):
    """``forall r, forall p: |HO(p, r)| >= threshold`` over the recorded window."""

    def __init__(self, threshold: int, scope: Optional[Iterable[ProcessId]] = None) -> None:
        self.threshold = threshold
        self.scope = frozenset(scope) if scope is not None else None
        self.name = f"per-round-cardinality(>={threshold})"

    def holds(self, collection: HOCollection) -> bool:
        scope = self.scope if self.scope is not None else collection.processes
        return all(
            bit_count(collection.ho_mask(p, r)) >= self.threshold
            for r in collection.rounds()
            for p in scope
        )


class MajorityEveryRound(PerRoundCardinality):
    """``forall r > 0, forall p: |HO(p, r)| > n/2`` (second example in Section 3.1)."""

    def __init__(self, n: int) -> None:
        super().__init__(threshold=n // 2 + 1)
        self.name = "majority-every-round"


class NonEmptyKernelEveryRound(CommunicationPredicate):
    """``forall r: intersection of HO(p, r) over p is non-empty``.

    This is the class of predicates "with non-empty kernel rounds" discussed
    in the related-work section (the Charron-Bost & Schiper weakest-predicate
    result).
    """

    name = "non-empty-kernel-every-round"

    def holds(self, collection: HOCollection) -> bool:
        return all(collection.kernel_mask(r) != 0 for r in collection.rounds())


class UniformRoundExists(CommunicationPredicate):
    """``exists r0 > 0: forall p, q: HO(p, r0) = HO(q, r0)`` (first example in Section 3.1)."""

    name = "uniform-round-exists"

    def holds(self, collection: HOCollection) -> bool:
        return any(collection.is_space_uniform(r) for r in collection.rounds())


class POtr(CommunicationPredicate):
    """``P_otr`` -- equation (1) of Table 1.

    ``exists r0 > 0, exists Pi0 with |Pi0| > 2n/3`` such that:

    * every process in Pi has ``HO(p, r0) = Pi0`` (a space-uniform round with
      a large enough heard-of set), and
    * every process ``p`` has a later round ``rp > r0`` with
      ``|HO(p, rp)| > 2n/3``.

    Paired with the OneThirdRule algorithm this predicate solves consensus
    for *all* processes (Theorem 1).

    Note: the second clause only bounds the *cardinality* of the later
    heard-of sets (after a Pi-wide space-uniform round every value in the
    system is common, so hearing any ``> 2n/3`` processes decides), whereas
    :class:`PRestrOtr`'s second clause requires *containment* of ``Pi0``.
    On arbitrary finite collections neither predicate implies the other.
    """

    name = "P_otr"

    def holds(self, collection: HOCollection) -> bool:
        n = collection.n
        threshold = otr_threshold(n)
        processes = collection.processes
        for r0 in collection.rounds():
            if not collection.is_space_uniform(r0):
                continue
            pi0 = collection.ho(0, r0) if n > 0 else frozenset()
            if len(pi0) < threshold:
                continue
            if self._second_part(collection, r0, processes, threshold):
                return True
        return False

    @staticmethod
    def _second_part(
        collection: HOCollection,
        r0: Round,
        processes: FrozenSet[ProcessId],
        threshold: int,
    ) -> bool:
        for p in processes:
            if not any(
                len(collection.ho(p, rp)) >= threshold
                for rp in range(r0 + 1, collection.max_round + 1)
            ):
                return False
        return True


class PRestrOtr(CommunicationPredicate):
    """``P_restr_otr`` -- equation (2) of Table 1 (restricted scope).

    ``exists r0 > 0, exists Pi0 with |Pi0| > 2n/3`` such that:

    * every process *in Pi0* has ``HO(p, r0) = Pi0``, and
    * every process *in Pi0* has a later round ``rp > r0`` with
      ``HO(p, rp) >= Pi0``.

    Paired with OneThirdRule, it guarantees integrity and agreement for all
    processes and termination for the processes in Pi0 (Theorem 2); this is
    the predicate implemented by the good-period algorithms of Section 4.
    """

    name = "P_restr_otr"

    def holds(self, collection: HOCollection) -> bool:
        return self.witness(collection) is not None

    def witness(self, collection: HOCollection) -> Optional[tuple[Round, HOSet]]:
        """Return a witness ``(r0, Pi0)`` if the predicate holds, else ``None``."""
        n = collection.n
        threshold = otr_threshold(n)
        for r0 in collection.rounds():
            for candidate in self._candidate_pi0(collection, r0):
                if len(candidate) < threshold:
                    continue
                if not all(collection.ho(p, r0) == candidate for p in candidate):
                    continue
                if self._second_part(collection, r0, candidate):
                    return r0, candidate
        return None

    @staticmethod
    def _candidate_pi0(collection: HOCollection, r0: Round) -> Iterable[HOSet]:
        seen = set()
        for p in collection.processes:
            ho = collection.ho(p, r0)
            if p in ho and ho not in seen:
                seen.add(ho)
                yield ho

    @staticmethod
    def _second_part(collection: HOCollection, r0: Round, pi0: HOSet) -> bool:
        for p in pi0:
            if not any(
                pi0.issubset(collection.ho(p, rp))
                for rp in range(r0 + 1, collection.max_round + 1)
            ):
                return False
        return True


class PSpaceUniform(CommunicationPredicate):
    """``P_su(Pi0, r1, r2)``: rounds ``r1 .. r2`` are space uniform for Pi0."""

    def __init__(self, pi0: Iterable[ProcessId], first_round: Round, last_round: Round) -> None:
        self.pi0 = frozenset(pi0)
        self.first_round = first_round
        self.last_round = last_round
        self.name = f"P_su(|Pi0|={len(self.pi0)}, {first_round}..{last_round})"

    def holds(self, collection: HOCollection) -> bool:
        return psu_holds(collection, self.pi0, self.first_round, self.last_round)


class PKernel(CommunicationPredicate):
    """``P_k(Pi0, r1, r2)``: Pi0 is contained in every HO set of Pi0 in rounds ``r1 .. r2``."""

    def __init__(self, pi0: Iterable[ProcessId], first_round: Round, last_round: Round) -> None:
        self.pi0 = frozenset(pi0)
        self.first_round = first_round
        self.last_round = last_round
        self.name = f"P_k(|Pi0|={len(self.pi0)}, {first_round}..{last_round})"

    def holds(self, collection: HOCollection) -> bool:
        return pk_holds(collection, self.pi0, self.first_round, self.last_round)


class P2Otr(CommunicationPredicate):
    """``P_2otr(Pi0)``: two *consecutive* rounds, the first space uniform, the second a kernel round.

    ``exists r0 > 0: P_su(Pi0, r0, r0) and P_k(Pi0, r0+1, r0+1)``.
    With ``|Pi0| > 2n/3`` this implies ``P_restr_otr``.
    """

    def __init__(self, pi0: Iterable[ProcessId]) -> None:
        self.pi0 = frozenset(pi0)
        self.name = f"P_2otr(|Pi0|={len(self.pi0)})"

    def holds(self, collection: HOCollection) -> bool:
        return self.witness(collection) is not None

    def witness(self, collection: HOCollection) -> Optional[Round]:
        """Return ``r0`` if the predicate holds, else ``None``."""
        for r0 in range(1, collection.max_round):
            if psu_holds(collection, self.pi0, r0, r0) and pk_holds(
                collection, self.pi0, r0 + 1, r0 + 1
            ):
                return r0
        return None


class P11Otr(CommunicationPredicate):
    """``P_1/1otr(Pi0)``: a space-uniform round followed (not necessarily immediately) by a kernel round.

    ``exists r0 > 0, exists r1 > r0: P_su(Pi0, r0, r0) and P_k(Pi0, r1, r1)``.
    With ``|Pi0| > 2n/3`` this implies ``P_restr_otr``.
    """

    def __init__(self, pi0: Iterable[ProcessId]) -> None:
        self.pi0 = frozenset(pi0)
        self.name = f"P_1/1otr(|Pi0|={len(self.pi0)})"

    def holds(self, collection: HOCollection) -> bool:
        return self.witness(collection) is not None

    def witness(self, collection: HOCollection) -> Optional[tuple[Round, Round]]:
        """Return a witness ``(r0, r1)`` if the predicate holds, else ``None``."""
        su_rounds = [
            r for r in collection.rounds() if psu_holds(collection, self.pi0, r, r)
        ]
        if not su_rounds:
            return None
        kernel_rounds = [
            r for r in collection.rounds() if pk_holds(collection, self.pi0, r, r)
        ]
        for r0 in su_rounds:
            for r1 in kernel_rounds:
                if r1 > r0:
                    return r0, r1
        return None


class ExistsPi0(CommunicationPredicate):
    """Existentially quantify the Pi0 parameter of a predicate factory.

    ``ExistsPi0(P2Otr, min_size=otr_threshold(n))`` is the predicate
    ``exists Pi0, |Pi0| >= min_size : P_2otr(Pi0)``, checked by enumerating
    candidate Pi0 sets drawn from the HO sets actually observed in the
    collection (checking all subsets would be exponential; every satisfying
    Pi0 of P_su/P_k-shaped predicates necessarily appears as an HO set).
    """

    def __init__(
        self,
        factory: Callable[[FrozenSet[ProcessId]], CommunicationPredicate],
        min_size: int,
    ) -> None:
        self.factory = factory
        self.min_size = min_size
        self.name = f"exists-Pi0(>={min_size})"

    def holds(self, collection: HOCollection) -> bool:
        return self.witness(collection) is not None

    def witness(self, collection: HOCollection) -> Optional[FrozenSet[ProcessId]]:
        """Return a satisfying Pi0 if one exists among observed HO sets."""
        candidates = set()
        for _, _, ho in collection.items():
            if len(ho) >= self.min_size:
                candidates.add(ho)
        for pi0 in sorted(candidates, key=lambda s: (-len(s), sorted(s))):
            if self.factory(pi0).holds(collection):
                return pi0
        return None


def exists_p2otr(n: int) -> ExistsPi0:
    """``exists Pi0, |Pi0| > 2n/3 : P_2otr(Pi0)`` (implies ``P_restr_otr``)."""
    return ExistsPi0(P2Otr, min_size=otr_threshold(n))


def exists_p11otr(n: int) -> ExistsPi0:
    """``exists Pi0, |Pi0| > 2n/3 : P_1/1otr(Pi0)`` (implies ``P_restr_otr``)."""
    return ExistsPi0(P11Otr, min_size=otr_threshold(n))


__all__ = [
    "CommunicationPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PerRoundCardinality",
    "MajorityEveryRound",
    "NonEmptyKernelEveryRound",
    "UniformRoundExists",
    "POtr",
    "PRestrOtr",
    "PSpaceUniform",
    "PKernel",
    "P2Otr",
    "P11Otr",
    "ExistsPi0",
    "exists_p2otr",
    "exists_p11otr",
    "psu_holds",
    "pk_holds",
    "find_psu_window",
    "find_pk_window",
    "otr_threshold",
]
