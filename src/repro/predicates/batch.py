"""Replica-vectorised predicate monitors: the batched dual of the streaming duals.

Every monitor of :mod:`repro.predicates.monitors` exists here a third time,
vectorised across the replica axis: a :class:`BatchMonitorBank` consumes one
lockstep round of ``(R, n, ceil(n/64))`` uint64 heard-of mask arrays and
maintains, per replica, exactly the state the scalar monitor would hold
after the same rounds -- popcounts over word arrays replace per-mask
``bit_count``, row comparisons replace per-process equality, and the
run-length statistics (good rounds, streaks, first-hold rounds) update as
``(R,)`` arrays under the batch's per-replica *active* mask, so replicas
that stop early simply freeze, just like a finished scalar run.

``P_restr_otr`` is the one monitor whose verdict state (the open-candidate
table) is inherently per-replica and sparse; its per-round *good condition*
(a candidate round) is fully vectorised, while the candidate bookkeeping
falls back to a per-replica loop that only touches replicas with candidate
activity -- the same shape as the oracle fallback loop of
:mod:`repro.adversaries.batch`.

Equivalence with the scalar monitors (and therefore, transitively, with the
whole-collection checkers) is pinned by tests: for every predicate, every
replica's :class:`~repro.predicates.reports.PredicateReport` must be equal
to the report of a scalar :class:`~repro.predicates.MonitorBank` fed the
same rounds.

This module requires numpy (the ``fast`` extra); the batch backend never
constructs a bank on the pure-Python fallback path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .._optional import require_numpy
from ..batch.arrays import pack_bools
from ..rounds.bitmask import iter_bits, mask_to_words, word_count, words_to_mask
from .monitors import MONITOR_NAMES, canonical_predicate_name
from .reports import PredicateReport
from .static import otr_threshold


class BatchPredicateMonitor:
    """Shared run-length machinery of one predicate over R replicas.

    Subclasses implement ``_round_good`` (an ``(R,)`` bool array), optionally
    ``_advance`` (verdict state), and ``_verdict`` (an ``(R,)`` bool array);
    the base keeps the per-replica statistics that feed
    :class:`~repro.predicates.reports.PredicateReport`, frozen wherever the
    replica is inactive.
    """

    name = "predicate"

    def __init__(self, n: int, replicas: int) -> None:
        np = require_numpy()
        self.np = np
        self.n = n
        self.replicas = replicas
        self.words = word_count(n)
        zeros = lambda: np.zeros(replicas, dtype=np.int32)  # noqa: E731
        self.rounds_observed = zeros()
        self.good_rounds = zeros()
        self.first_good = zeros()          # 0 = not yet
        self.longest_good = zeros()
        self.longest_bad = zeros()
        self.current_good = zeros()
        self.current_bad = zeros()
        self.first_hold = zeros()          # 0 = not yet
        self.last_good = np.zeros(replicas, dtype=bool)

    # ------------------------------------------------------------------ #
    # streaming entry point
    # ------------------------------------------------------------------ #

    def observe(self, round: int, words: Any, heard: Any, popc: Any, active: Any) -> None:
        np = self.np
        good = self._round_good(words, heard, popc)
        self._advance(round, words, heard, popc, good, active)
        g = good & active
        self.rounds_observed = np.where(active, np.int32(round), self.rounds_observed)
        self.good_rounds += g
        self.first_good = np.where(g & (self.first_good == 0), np.int32(round), self.first_good)
        self.current_good = np.where(active, np.where(good, self.current_good + 1, 0),
                                     self.current_good)
        self.current_bad = np.where(active, np.where(good, 0, self.current_bad + 1),
                                    self.current_bad)
        self.longest_good = np.maximum(self.longest_good, self.current_good)
        self.longest_bad = np.maximum(self.longest_bad, self.current_bad)
        self.last_good = np.where(active, good, self.last_good)
        holds = self._verdict()
        self.first_hold = np.where(
            active & holds & (self.first_hold == 0), np.int32(round), self.first_hold
        )

    # subclass hooks ---------------------------------------------------- #

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        raise NotImplementedError

    def _advance(
        self, round: int, words: Any, heard: Any, popc: Any, good: Any, active: Any
    ) -> None:
        pass

    def _verdict(self) -> Any:
        raise NotImplementedError

    # reports ----------------------------------------------------------- #

    def report_of(self, replica: int) -> PredicateReport:
        holds = bool(self._verdict()[replica])
        return PredicateReport(
            name=self.name,
            rounds_observed=int(self.rounds_observed[replica]),
            good_rounds=int(self.good_rounds[replica]),
            first_good_round=int(self.first_good[replica]) or None,
            longest_good_run=int(self.longest_good[replica]),
            longest_bad_run=int(self.longest_bad[replica]),
            first_hold_round=int(self.first_hold[replica]) or None,
            holds=holds,
        )


def _pi0_state(np: Any, n: int, pi0_mask: Optional[int]) -> Any:
    mask = ((1 << n) - 1) if pi0_mask is None else pi0_mask
    indices = list(iter_bits(mask))
    words = np.array(mask_to_words(mask, n), dtype=np.uint64)
    return mask, indices, words


class BatchPSuMonitor(BatchPredicateMonitor):
    """Vectorised :class:`~repro.predicates.monitors.PSuMonitor` (open window)."""

    name = "p_su"

    def __init__(self, n: int, replicas: int, pi0_mask: Optional[int] = None) -> None:
        super().__init__(n, replicas)
        self.pi0_mask, self._pi0_idx, self._pi0_words = _pi0_state(self.np, n, pi0_mask)
        self._ok = self.np.ones(replicas, dtype=bool)

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        if not self._pi0_idx:
            return self.np.ones(self.replicas, dtype=bool)
        return (words[:, self._pi0_idx, :] == self._pi0_words).all(axis=(1, 2))

    def _advance(self, round, words, heard, popc, good, active) -> None:
        self._ok &= good | ~active

    def _verdict(self) -> Any:
        observed = self.rounds_observed >= 1
        if self.pi0_mask == 0:
            return observed
        return observed & self._ok


class BatchPKernelMonitor(BatchPSuMonitor):
    """Vectorised :class:`~repro.predicates.monitors.PKernelMonitor` (open window)."""

    name = "p_k"

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        if not self._pi0_idx:
            return self.np.ones(self.replicas, dtype=bool)
        rows = words[:, self._pi0_idx, :]
        return ((rows & self._pi0_words) == self._pi0_words).all(axis=(1, 2))


class BatchPOtrMonitor(BatchPredicateMonitor):
    """Vectorised :class:`~repro.predicates.monitors.POtrMonitor`."""

    name = "p_otr"

    def __init__(self, n: int, replicas: int) -> None:
        super().__init__(n, replicas)
        np = self.np
        self.threshold = otr_threshold(n)
        self._u_min = np.zeros(replicas, dtype=np.int32)  # 0 = unset
        self._later = np.zeros((replicas, self.words), dtype=np.uint64)
        self._full_words = np.array(mask_to_words((1 << n) - 1, n), dtype=np.uint64)

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        uniform = (words == words[:, :1, :]).all(axis=(1, 2))
        return uniform & (popc[:, 0] >= self.threshold)

    def _advance(self, round, words, heard, popc, good, active) -> None:
        np = self.np
        done = (self._later == self._full_words).all(axis=1)
        witnessed = self._u_min > 0
        grow = active & witnessed & ~done
        if grow.any():
            big = pack_bools(popc >= self.threshold, self.n)
            self._later = np.where(grow[:, None], self._later | big, self._later)
        self._u_min = np.where(
            active & ~witnessed & good, np.int32(round), self._u_min
        )

    def _verdict(self) -> Any:
        return (self._u_min > 0) & (self._later == self._full_words).all(axis=1)


class BatchP2OtrMonitor(BatchPredicateMonitor):
    """Vectorised :class:`~repro.predicates.monitors.P2OtrMonitor`."""

    name = "p_2otr"

    def __init__(self, n: int, replicas: int, pi0_mask: Optional[int] = None) -> None:
        super().__init__(n, replicas)
        self.pi0_mask, self._pi0_idx, self._pi0_words = _pi0_state(self.np, n, pi0_mask)
        self._prev_su = self.np.zeros(replicas, dtype=bool)
        self._satisfied = self.np.zeros(replicas, dtype=bool)

    def _space_uniform(self, words: Any) -> Any:
        if not self._pi0_idx:
            return self.np.ones(self.replicas, dtype=bool)
        return (words[:, self._pi0_idx, :] == self._pi0_words).all(axis=(1, 2))

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        if not self._pi0_idx:
            return self.np.ones(self.replicas, dtype=bool)
        rows = words[:, self._pi0_idx, :]
        return ((rows & self._pi0_words) == self._pi0_words).all(axis=(1, 2))

    def _advance(self, round, words, heard, popc, good, active) -> None:
        np = self.np
        self._satisfied |= active & self._prev_su & good
        self._prev_su = np.where(active, self._space_uniform(words), self._prev_su)

    def _verdict(self) -> Any:
        return self._satisfied


class BatchP11OtrMonitor(BatchP2OtrMonitor):
    """Vectorised :class:`~repro.predicates.monitors.P11OtrMonitor`."""

    name = "p_1/1otr"

    def __init__(self, n: int, replicas: int, pi0_mask: Optional[int] = None) -> None:
        super().__init__(n, replicas, pi0_mask)
        self._su_seen = self.np.zeros(replicas, dtype=bool)

    def _advance(self, round, words, heard, popc, good, active) -> None:
        self._satisfied |= active & self._su_seen & good
        self._su_seen |= active & self._space_uniform(words)


class BatchPRestrOtrMonitor(BatchPredicateMonitor):
    """Vectorised good condition of ``P_restr_otr``; sparse candidate bookkeeping.

    The candidate scan (is there a > 2n/3 set whose members all heard
    exactly each other?) runs as array comparisons for all replicas at
    once; the open-candidate table -- at most a handful of masks per
    replica, usually empty -- mirrors the scalar monitor's dict and is only
    touched for replicas with candidate activity.
    """

    name = "p_restr_otr"

    def __init__(self, n: int, replicas: int) -> None:
        super().__init__(n, replicas)
        np = self.np
        self.threshold = otr_threshold(n)
        self._satisfied = np.zeros(replicas, dtype=bool)
        self._candidates: List[Dict[int, int]] = [{} for _ in range(replicas)]
        self._diag = np.arange(n)

    def _round_good(self, words: Any, heard: Any, popc: Any) -> Any:
        np = self.np
        rows_equal = (words[:, :, None, :] == words[:, None, :, :]).all(axis=3)
        members_equal = (~heard | rows_equal).all(axis=2)
        hears_self = heard[:, self._diag, self._diag]
        self._ok_p = (popc >= self.threshold) & hears_self & members_equal
        return self._ok_p.any(axis=1)

    def _advance(self, round, words, heard, popc, good, active) -> None:
        ok_p = self._ok_p
        for r in range(self.replicas):
            if not active[r] or self._satisfied[r]:
                continue
            open_candidates = self._candidates[r]
            if not open_candidates and not good[r]:
                continue
            masks: Optional[List[int]] = None
            if open_candidates:
                masks = [words_to_mask(int(w) for w in row) for row in words[r]]
                for candidate, pending in list(open_candidates.items()):
                    remaining = pending
                    for p in iter_bits(pending):
                        if masks[p] & candidate == candidate:
                            remaining &= ~(1 << p)
                    if remaining == 0:
                        self._satisfied[r] = True
                    else:
                        open_candidates[candidate] = remaining
            if self._satisfied[r]:
                open_candidates.clear()
                continue
            if good[r]:
                p_star = int(ok_p[r].argmax())
                if masks is not None:
                    candidate = masks[p_star]
                else:
                    candidate = words_to_mask(int(w) for w in words[r, p_star])
                if candidate and candidate not in open_candidates:
                    # The second clause needs strictly later rounds, so this
                    # round does not clear its own candidate.
                    open_candidates[candidate] = candidate

    def _verdict(self) -> Any:
        return self._satisfied


# --------------------------------------------------------------------------- #
# the bank
# --------------------------------------------------------------------------- #


class BatchMonitorBank:
    """Vectorised monitors for R replicas, fed one lockstep round at a time.

    The batched twin of :class:`repro.predicates.MonitorBank` for the
    lockstep oracle path (rounds arrive complete and in order, so no
    collator is needed).  ``stop_after_held`` mirrors
    :class:`~repro.predicates.monitors.StopAfterHeld`: a replica requests a
    stop once any of its monitors' good condition held for that many
    consecutive rounds; requests are sticky and per replica.
    """

    def __init__(
        self,
        n: int,
        replicas: int,
        predicates: Sequence[str],
        pi0_mask: Optional[int] = None,
        stop_after_held: Optional[int] = None,
    ) -> None:
        np = require_numpy()
        if not predicates:
            raise ValueError("at least one predicate name is required")
        if stop_after_held is not None and stop_after_held < 1:
            raise ValueError(f"stop_after_held must be at least 1, got {stop_after_held}")
        self.np = np
        self.n = n
        self.replicas = replicas
        self.stop_after_held = stop_after_held
        self.monitors = [
            build_batch_monitor(name, n, replicas, pi0_mask=pi0_mask)
            for name in predicates
        ]
        self._stop = np.zeros(replicas, dtype=bool)

    def observe_round(self, round: int, words: Any, heard: Any, popc: Any, active: Any) -> None:
        for monitor in self.monitors:
            monitor.observe(round, words, heard, popc, active)
        if self.stop_after_held is not None:
            held = self.np.zeros(self.replicas, dtype=bool)
            for monitor in self.monitors:
                held |= monitor.current_good >= self.stop_after_held
            self._stop |= active & held

    @property
    def stop_array(self) -> Any:
        """(R,) bool -- replicas whose stop policy fired (sticky)."""
        return self._stop

    def reports_of(self, replica: int) -> Dict[str, PredicateReport]:
        return {monitor.name: monitor.report_of(replica) for monitor in self.monitors}

    def reports_json_of(self, replica: int) -> Dict[str, Dict[str, Any]]:
        return {
            name: report.to_json_dict() for name, report in self.reports_of(replica).items()
        }


def build_batch_monitor(
    name: str,
    n: int,
    replicas: int,
    pi0_mask: Optional[int] = None,
) -> BatchPredicateMonitor:
    """Build the vectorised monitor for predicate *name* over R replicas.

    Accepts the same names (and aliases) as
    :func:`repro.predicates.build_monitor`; the Pi0-scoped predicates take
    *pi0_mask* as a bitmask (``None`` means the full process set).
    """
    key = canonical_predicate_name(name)
    if key == "p_otr":
        return BatchPOtrMonitor(n, replicas)
    if key == "p_restr_otr":
        return BatchPRestrOtrMonitor(n, replicas)
    if key == "p_su":
        return BatchPSuMonitor(n, replicas, pi0_mask)
    if key == "p_k":
        return BatchPKernelMonitor(n, replicas, pi0_mask)
    if key == "p_2otr":
        return BatchP2OtrMonitor(n, replicas, pi0_mask)
    return BatchP11OtrMonitor(n, replicas, pi0_mask)


__all__ = [
    "MONITOR_NAMES",
    "BatchPredicateMonitor",
    "BatchPOtrMonitor",
    "BatchPRestrOtrMonitor",
    "BatchPSuMonitor",
    "BatchPKernelMonitor",
    "BatchP2OtrMonitor",
    "BatchP11OtrMonitor",
    "BatchMonitorBank",
    "build_batch_monitor",
]
