"""Batched heard-of oracles: the replica-vectorised environment layer.

A :class:`BatchOracle` produces, per round, the heard-of sets of *all* R
replicas of a batch at once, as an ``(R, n, ceil(n/64))`` uint64 mask array
(the word-spill layout of :func:`repro.rounds.bitmask.mask_to_words`).  Two
strategies cover the whole oracle zoo:

* :class:`BroadcastBatchOracle` -- for *replica-invariant* environments
  (``oracle.replica_invariant``: the classic crash-stop / static-omission /
  partition-schedule family, scripted and silent-round oracles, and any
  combinator over those).  The masks depend only on ``(round, process)``,
  so one scalar query per process is computed and broadcast across the
  replica axis -- the vectorised classic zoo.
* :class:`PerReplicaBatchOracle` -- the automatic fallback loop for the
  stateful families (seeded omission/loss, the dynamic adversaries, any
  combinator containing one).  Each replica owns the exact scalar oracle
  the corresponding single run would use, queried replica by replica; the
  transition kernels above stay vectorised, and bit-identity with the
  scalar path is preserved because the very same oracle objects draw from
  the very same :class:`~repro.engine.rng.SeededRng` streams.

:func:`vectorize_oracles` picks the strategy.  Broadcasting additionally
assumes the per-replica oracles were *constructed identically* (a
replica-invariant oracle whose constructor arguments varied per seed would
still differ across replicas); the scenario builders guarantee this by
constructing deterministic oracles independently of the replica seed.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

from .._optional import require_numpy
from ..rounds.bitmask import full_mask, mask_to_words, word_count
from .base import HOOracleBase


@runtime_checkable
class BatchOracle(Protocol):
    """The environment of a replica batch: all replicas' masks, per round.

    ``round_masks(round, active)`` returns the ``(R, n, W)`` uint64 array of
    heard-of sets for *round*; *active* is an ``(R,)`` bool array and rows
    of inactive replicas may hold arbitrary (ignored) masks -- a stopped
    replica's oracle must not be queried further, exactly like a finished
    scalar run.
    """

    n: int
    replicas: int

    def round_masks(self, round: int, active: Any) -> Any: ...


class BroadcastBatchOracle:
    """One replica-invariant scalar oracle, broadcast across the replica axis."""

    def __init__(self, oracle: HOOracleBase, replicas: int) -> None:
        np = require_numpy()
        if not getattr(oracle, "replica_invariant", False):
            raise ValueError(
                f"{type(oracle).__name__} is not replica-invariant; "
                "use PerReplicaBatchOracle"
            )
        self.np = np
        self.oracle = oracle
        self.n = oracle.n
        self.replicas = replicas
        self._words = word_count(self.n)
        self._full = full_mask(self.n)
        self._row = np.empty((self.n, self._words), dtype=np.uint64)

    def round_masks(self, round: int, active: Any) -> Any:
        np = self.np
        oracle = self.oracle
        full = self._full
        row = self._row
        for p in range(self.n):
            row[p] = mask_to_words(oracle.ho_mask(round, p) & full, self.n)
        return np.broadcast_to(row, (self.replicas, self.n, self._words))


class PerReplicaBatchOracle:
    """The fallback loop: one scalar oracle per replica, queried in a loop.

    Queries follow the scalar engine's order (ascending process id per
    round, replicas independent), so seeded oracles draw exactly the
    streams their single-run twins draw.  Inactive replicas are skipped --
    their oracles stop being queried the moment their run would have ended.
    """

    def __init__(self, oracles: Sequence[HOOracleBase]) -> None:
        np = require_numpy()
        if not oracles:
            raise ValueError("at least one per-replica oracle is required")
        n = oracles[0].n
        for oracle in oracles:
            if oracle.n != n:
                raise ValueError("per-replica oracles must share one system size")
        self.np = np
        self.oracles = list(oracles)
        self.n = n
        self.replicas = len(self.oracles)
        self._words = word_count(n)
        self._full = full_mask(n)
        self._buffer = np.zeros((self.replicas, n, self._words), dtype=np.uint64)

    def round_masks(self, round: int, active: Any) -> Any:
        buffer = self._buffer
        full = self._full
        n = self.n
        for r, oracle in enumerate(self.oracles):
            if not active[r]:
                continue
            mask_fn = oracle.ho_mask
            for p in range(n):
                buffer[r, p] = mask_to_words(mask_fn(round, p) & full, n)
        return buffer


class IntersectBatchOracle:
    """Intersection of batch oracles (the batched ``IntersectOracle``)."""

    def __init__(self, *components: BatchOracle) -> None:
        if not components:
            raise ValueError("at least one component is required")
        self.components = components
        self.n = components[0].n
        self.replicas = components[0].replicas
        for component in components:
            if (component.n, component.replicas) != (self.n, self.replicas):
                raise ValueError("components must share (n, replicas)")

    def round_masks(self, round: int, active: Any) -> Any:
        masks = self.components[0].round_masks(round, active)
        for component in self.components[1:]:
            masks = masks & component.round_masks(round, active)
        return masks


def _structurally_equal(a: Any, b: Any) -> bool:
    """Whether two oracle objects were constructed with the same parameters.

    Replica invariance says an oracle's masks depend only on ``(round,
    process)`` *and its constructor arguments* -- a batch may still have
    been built with per-replica arguments (say, a different crash round per
    seed), in which case broadcasting replica 0 would be silently wrong.
    Deterministic oracles keep all their construction state in plain
    instance attributes (ints, masks, dicts, nested component oracles), so
    structural equality over those attributes is a sound broadcast check;
    anything uncomparable conservatively fails it.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, HOOracleBase):
        return _structurally_equal(a.__dict__, b.__dict__)
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_structurally_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_structurally_equal, a, b))
    try:
        return bool(a == b)
    except Exception:
        return False


def vectorize_oracles(oracles: Sequence[HOOracleBase], replicas: int) -> Any:
    """The batch oracle for one oracle per replica, broadcast when sound.

    *oracles* holds the scalar oracle of every replica (length R).  The
    batch is served by broadcasting replica 0's oracle exactly when every
    oracle is replica-invariant *and* structurally equal to it (same class,
    same constructor state, recursively through combinator components) --
    replica-varying or stateful environments keep one oracle per replica
    via the fallback loop, so broadcasting can never silently change a
    replica's environment.

    The dynamic adversary families draw counter-based randomness
    (:mod:`repro.adversaries.counter_batch`): a batch of one family with
    shared construction parameters is served by its array dual, which
    recomputes the scalar oracles' draws array-wide -- bit-identical with
    no per-replica loop.

    Intersections decompose: a batch of ``IntersectOracle``\\ s is rebuilt
    as an :class:`IntersectBatchOracle` whose components broadcast or run
    their counter duals independently.  Decomposition reorders queries
    *across* components (component by component instead of process by
    process), which is invisible to broadcast and counter-based components
    (their draws carry no cursor) but would change the draw interleaving of
    two *sequential* stateful components sharing a stream -- so the guard
    that remains is: at most one component may resolve to the opaque
    :class:`PerReplicaBatchOracle` loop.
    """
    from .combinators import IntersectOracle
    from .counter_batch import counter_batch_dual

    if len(oracles) != replicas:
        raise ValueError(f"expected {replicas} oracles, got {len(oracles)}")
    if getattr(oracles[0], "replica_invariant", False) and all(
        _structurally_equal(oracle, oracles[0]) for oracle in oracles[1:]
    ):
        return BroadcastBatchOracle(oracles[0], replicas)
    dual = counter_batch_dual(oracles, replicas)
    if dual is not None:
        return dual
    if isinstance(oracles[0], IntersectOracle):
        arity = len(oracles[0].oracles)
        if arity > 1 and all(
            type(oracle) is IntersectOracle and len(oracle.oracles) == arity
            for oracle in oracles
        ):
            components = [
                vectorize_oracles([oracle.oracles[i] for oracle in oracles], replicas)
                for i in range(arity)
            ]
            sequential = sum(
                1 for c in components if isinstance(c, PerReplicaBatchOracle)
            )
            if sequential <= 1:
                return IntersectBatchOracle(*components)
    return PerReplicaBatchOracle(oracles)


__all__ = [
    "BatchOracle",
    "BroadcastBatchOracle",
    "PerReplicaBatchOracle",
    "IntersectBatchOracle",
    "vectorize_oracles",
]
