"""The classic heard-of oracle zoo: static crashes, omissions, partitions.

These are the oracles the unit tests, property-based tests, examples and
benchmark E1 (Table 1) have always used: some are built to *satisfy* a given
communication predicate (so that liveness can be demonstrated), others are
built to *violate* it (so that the loss of liveness -- but never of safety --
can be demonstrated).

All of them are mask-native (:class:`~repro.adversaries.base.MaskOracleBase`)
and all randomness flows through named :class:`~repro.engine.rng.SeededRng`
sub-streams; passing the same ``rng`` that drives the simulator puts oracle
noise and simulator noise under one run seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from ..core.types import ProcessId, Round, validate_process_subset
from ..engine.rng import SeededRng
from ..rounds.bitmask import mask_of
from .base import MaskOracleBase, bernoulli_mask, oracle_rng


class FaultFreeOracle(MaskOracleBase):
    """No transmission faults at all: ``HO(p, r) = Pi`` for every p and r."""

    replica_invariant = True

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        return self._full


class StaticCrashOracle(MaskOracleBase):
    """Permanent-crash (SP) faults: crashed processes are never heard of again.

    *crash_rounds* maps a process to the first round in which its messages
    are no longer received (it "crashed before sending" in that round).
    """

    replica_invariant = True

    def __init__(self, n: int, crash_rounds: Mapping[ProcessId, Round]) -> None:
        super().__init__(n)
        for p, r in crash_rounds.items():
            if not 0 <= p < n:
                raise ValueError(f"crashed process {p} outside 0..{n - 1}")
            if r <= 0:
                raise ValueError(f"crash round must be >= 1, got {r} for process {p}")
        self.crash_rounds = dict(crash_rounds)
        #: distinct crash rounds, ascending, with the mask of processes
        #: already crashed at that round -- lets ho_mask be a lookup.
        self._steps: Tuple[Tuple[Round, int], ...] = self._build_steps()

    def _build_steps(self) -> Tuple[Tuple[Round, int], ...]:
        steps = []
        for boundary in sorted(set(self.crash_rounds.values())):
            dead = mask_of(p for p, r in self.crash_rounds.items() if r <= boundary)
            steps.append((boundary, self._full & ~dead))
        return tuple(steps)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        alive = self._full
        for boundary, mask in self._steps:
            if round >= boundary:
                alive = mask
            else:
                break
        return alive


class RandomOmissionOracle(MaskOracleBase):
    """Dynamic transient (DT) faults: each transmission is lost independently.

    Every (sender, receiver, round) transmission is dropped with probability
    *loss_probability*; the receiver always hears of itself when
    *always_hear_self* is set.  Randomness comes from the ``oracle.loss``
    sub-stream of the run's :class:`SeededRng`, so runs are reproducible and
    loss draws never perturb any other concern.  The oracle memoises its
    choices so that repeated queries for the same (round, process) are
    consistent.
    """

    def __init__(
        self,
        n: int,
        loss_probability: float,
        seed: int = 0,
        always_hear_self: bool = True,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(n)
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {loss_probability}")
        self.loss_probability = loss_probability
        self.always_hear_self = always_hear_self
        self._stream = oracle_rng(seed, rng).stream("oracle.loss")
        self._memo: Dict[Tuple[Round, ProcessId], int] = {}

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        key = (round, process)
        mask = self._memo.get(key)
        if mask is None:
            stream = self._stream
            loss = self.loss_probability
            mask = 0
            bit = 1
            for q in range(self.n):
                if q == process and self.always_hear_self:
                    mask |= bit
                elif stream.random() >= loss:
                    mask |= bit
                bit <<= 1
            self._memo[key] = mask
        return mask


class PartitionOracle(MaskOracleBase):
    """A network partition: processes only hear of their own block.

    *blocks* is a partition of (a subset of) Pi; processes not mentioned in
    any block form an implicit singleton block.  Optionally the partition
    *heals* from round *heal_round* on, after which communication is
    fault free.
    """

    replica_invariant = True

    def __init__(
        self,
        n: int,
        blocks: Sequence[Iterable[ProcessId]],
        heal_round: Optional[Round] = None,
    ) -> None:
        super().__init__(n)
        self._block_mask: Dict[ProcessId, int] = {}
        covered: Set[ProcessId] = set()
        for block in blocks:
            block_set = validate_process_subset(block, n)
            if block_set & covered:
                raise ValueError("partition blocks must be disjoint")
            covered |= block_set
            block_mask = mask_of(block_set)
            for p in block_set:
                self._block_mask[p] = block_mask
        for p in range(n):
            if p not in self._block_mask:
                self._block_mask[p] = 1 << p
        self.heal_round = heal_round

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if self.heal_round is not None and round >= self.heal_round:
            return self._full
        return self._block_mask[process]


class SilentRoundsOracle(MaskOracleBase):
    """Rounds in *silent_rounds* deliver nothing at all; other rounds are fault free.

    ``P_otr`` explicitly allows rounds in which no messages are received;
    this oracle exercises that corner (used in tests of Theorem 1).
    """

    replica_invariant = True

    def __init__(self, n: int, silent_rounds: Iterable[Round]) -> None:
        super().__init__(n)
        self.silent_rounds = frozenset(silent_rounds)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if round in self.silent_rounds:
            return 0
        return self._full


class ScriptedOracle(MaskOracleBase):
    """An oracle driven by an explicit script ``{(round, process): HO set}``.

    Rounds/processes not covered by the script fall back to *default*
    (the full process set unless stated otherwise).  This is the work-horse
    of unit tests that need precise control over heard-of sets.
    """

    replica_invariant = True

    def __init__(
        self,
        n: int,
        script: Mapping[Tuple[Round, ProcessId], Iterable[ProcessId]],
        default: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        super().__init__(n)
        self.script = {
            key: validate_process_subset(value, n) for key, value in script.items()
        }
        self._script_masks = {key: mask_of(value) for key, value in self.script.items()}
        self.default = (
            frozenset(range(n)) if default is None else validate_process_subset(default, n)
        )
        self._default_mask = mask_of(self.default)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        return self._script_masks.get((round, process), self._default_mask)


class GoodPeriodOracle(MaskOracleBase):
    """An oracle shaped like the paper's good/bad period alternation, at round granularity.

    Rounds before *good_from* are "bad": heard-of sets are drawn adversarially
    (every transmission dropped with probability *bad_loss_probability*, and
    the receiving process is partitioned away from a random half of the
    system with probability *bad_partition_probability*).  From round
    *good_from* to *good_to* (inclusive; ``None`` means forever) the rounds
    are perfect for the processes in *pi0*: every ``p in pi0`` has
    ``HO(p, r) = pi0``.  Processes outside pi0 keep experiencing bad rounds.

    Loss draws come from the ``oracle.loss`` sub-stream and partition draws
    from ``oracle.partition``, so changing one noise model cannot shift the
    other in time.

    This is the round-level analogue of a "pi0-down" good period and is used
    to construct collections satisfying ``P_su``/``P_2otr`` without running
    the full step-level simulator.
    """

    def __init__(
        self,
        n: int,
        pi0: Iterable[ProcessId],
        good_from: Round,
        good_to: Optional[Round] = None,
        bad_loss_probability: float = 0.6,
        bad_partition_probability: float = 0.3,
        seed: int = 0,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(n)
        self.pi0 = validate_process_subset(pi0, n)
        self._pi0_mask = mask_of(self.pi0)
        if good_from <= 0:
            raise ValueError(f"good_from must be >= 1, got {good_from}")
        self.good_from = good_from
        self.good_to = good_to
        self.bad_loss_probability = bad_loss_probability
        self.bad_partition_probability = bad_partition_probability
        master = oracle_rng(seed, rng)
        self._loss = master.stream("oracle.loss")
        self._partition = master.stream("oracle.partition")
        self._memo: Dict[Tuple[Round, ProcessId], int] = {}

    def _in_good_period(self, round: Round) -> bool:
        if round < self.good_from:
            return False
        return self.good_to is None or round <= self.good_to

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if self._in_good_period(round) and process in self.pi0:
            return self._pi0_mask
        key = (round, process)
        mask = self._memo.get(key)
        if mask is None:
            # Bad round: independent loss per sender (the receiver always
            # hears of itself), then possibly a partition away from a random
            # half of the system.
            mask = bernoulli_mask(self._loss, self.n, 1.0 - self.bad_loss_probability)
            mask |= 1 << process
            if self._partition.random() < self.bad_partition_probability:
                half = self._partition.sample(range(self.n), self.n // 2)
                mask &= mask_of(half) | (1 << process)
            self._memo[key] = mask
        return mask


class KernelOnlyOracle(MaskOracleBase):
    """Rounds satisfy ``P_k(pi0, ., .)`` but are *not* space uniform.

    Every process in pi0 hears of all of pi0 plus a random, per-process
    subset of the remaining processes (drawn from the ``oracle.kernel``
    sub-stream).  This oracle deliberately violates ``P_su`` while
    satisfying ``P_k``, and is the canonical input of the Algorithm 4
    translation (Theorem 8 benchmarks and property tests).
    """

    def __init__(
        self,
        n: int,
        pi0: Iterable[ProcessId],
        seed: int = 0,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(n)
        self.pi0 = validate_process_subset(pi0, n)
        self._pi0_mask = mask_of(self.pi0)
        self._stream = oracle_rng(seed, rng).stream("oracle.kernel")
        self._memo: Dict[Tuple[Round, ProcessId], int] = {}

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        key = (round, process)
        mask = self._memo.get(key)
        if mask is None:
            stream = self._stream
            if (1 << process) & self._pi0_mask:
                extras = 0
                outside = self._full & ~self._pi0_mask
                bit = 1
                for q in range(self.n):
                    if outside & bit and stream.random() < 0.5:
                        extras |= bit
                    bit <<= 1
                mask = self._pi0_mask | extras
            else:
                # Processes outside pi0 see an arbitrary subset.
                mask = bernoulli_mask(stream, self.n, 0.5) | (1 << process)
            self._memo[key] = mask
        return mask


class CounterKernelOracle(MaskOracleBase):
    """:class:`KernelOnlyOracle` with counter-based draws: the batchable twin.

    Same distribution -- every ``p in pi0`` hears of all of pi0 plus an
    independent coin-flip subset of the outsiders, everyone else an
    arbitrary subset plus itself -- but each coin is a pure function of
    ``(stream key, tag, round, receiver, sender)`` on the ``oracle.kernel``
    counter stream, so :class:`~repro.adversaries.counter_batch.
    CounterKernelBatchDual` recomputes all of them array-wide with no
    per-replica query loop.  Tag 0 addresses the member extras, tag 1 the
    outsider subsets, keeping the two draw types decorrelated.
    """

    def __init__(
        self,
        n: int,
        pi0: Iterable[ProcessId],
        seed: int = 0,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(n)
        self.pi0 = validate_process_subset(pi0, n)
        self._pi0_mask = mask_of(self.pi0)
        self._ctr = oracle_rng(seed, rng).counter_stream("oracle.kernel")
        self._memo: Dict[Tuple[Round, ProcessId], int] = {}

    def counter_batch_signature(self) -> Tuple[object, ...]:
        return ("counter-kernel", self.n, self._pi0_mask)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        key = (round, process)
        mask = self._memo.get(key)
        if mask is None:
            ctr = self._ctr
            if (1 << process) & self._pi0_mask:
                extras = 0
                outside = self._full & ~self._pi0_mask
                bit = 1
                for q in range(self.n):
                    if outside & bit and ctr.below(0.5, 0, round, process, q):
                        extras |= bit
                    bit <<= 1
                mask = self._pi0_mask | extras
            else:
                mask = 1 << process
                bit = 1
                for q in range(self.n):
                    if ctr.below(0.5, 1, round, process, q):
                        mask |= bit
                    bit <<= 1
            self._memo[key] = mask
        return mask


__all__ = [
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
    "CounterKernelOracle",
]
