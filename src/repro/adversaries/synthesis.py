"""Predicate-driven oracle synthesis: environments from specifications.

A communication predicate *is* the specification of an environment, so it
can be run backwards: given any
:class:`~repro.core.predicates.CommunicationPredicate`, search for a finite
heard-of collection that satisfies (or violates) it, and replay that
collection as an oracle.  This turns every predicate in the library into a
test-environment factory: ``synthesize_oracle(POtr(), n=5)`` yields an
environment under which OneThirdRule must terminate, and
``satisfy=False`` yields one under which only safety may be asserted.

The search is generate-and-test over a pool of *structured* candidate
shapes (fault-free, silence, omission noise, partitions with optional heal,
good-period windows, kernel rounds, single uniform rounds) -- the shapes
the paper's predicates quantify over -- with all randomness drawn from the
``oracle.synthesis`` sub-stream.  For the predicates shipped with the
library a witness is typically found within the first few attempts; a
:class:`SynthesisError` reports an exhausted budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:
    import random

from ..core.predicates import CommunicationPredicate
from ..core.types import HOCollection, ProcessId, Round
from ..engine.rng import SeededRng
from ..rounds.bitmask import full_mask, mask_of
from .base import MaskOracleBase, bernoulli_mask, oracle_rng


class SynthesisError(RuntimeError):
    """No heard-of collection matching the request was found within the budget."""


class CollectionOracle(MaskOracleBase):
    """Replay a recorded :class:`HOCollection` as a heard-of oracle.

    Rounds beyond the recorded window fall back to *default_mask* (the full
    process set unless stated otherwise), so replayed environments keep a
    machine runnable past the synthesised prefix.
    """

    replica_invariant = True

    def __init__(self, collection: HOCollection, default_mask: Optional[int] = None) -> None:
        super().__init__(collection.n)
        self.collection = collection
        self.default_mask = self._full if default_mask is None else default_mask & self._full

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if 1 <= round <= self.collection.max_round and self.collection.has_record(process, round):
            return self.collection.ho_mask(process, round)
        return self.default_mask


# --------------------------------------------------------------------------- #
# candidate-shape generators
# --------------------------------------------------------------------------- #


def _fill(collection: HOCollection, round: Round, masks: List[int]) -> None:
    for p, mask in enumerate(masks):
        collection.record_mask(p, round, mask)


def _uniform_round(n: int, mask: int) -> List[int]:
    return [mask] * n


def _candidate_fault_free(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    full = full_mask(n)
    for r in range(1, rounds + 1):
        _fill(collection, r, _uniform_round(n, full))
    return collection


def _candidate_silent(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    for r in range(1, rounds + 1):
        _fill(collection, r, _uniform_round(n, 0))
    return collection


def _candidate_omission(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    hear = 1.0 - stream.choice((0.1, 0.3, 0.5, 0.7, 0.9))
    for r in range(1, rounds + 1):
        for p in range(n):
            collection.record_mask(p, r, bernoulli_mask(stream, n, hear) | (1 << p))
    return collection


def _candidate_partition(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    blocks = stream.randrange(2, max(3, n // 2 + 1))
    assignment = [stream.randrange(blocks) for p in range(n)]
    heal = stream.choice((None, stream.randrange(1, rounds + 1)))
    full = full_mask(n)
    block_masks = [
        mask_of(q for q in range(n) if assignment[q] == b) for b in range(blocks)
    ]
    for r in range(1, rounds + 1):
        for p in range(n):
            if heal is not None and r >= heal:
                collection.record_mask(p, r, full)
            else:
                collection.record_mask(p, r, block_masks[assignment[p]] | (1 << p))
    return collection


def _candidate_good_period(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    pi0_size = stream.randrange(max(1, (2 * n) // 3 + 1), n + 1)
    pi0_mask = mask_of(stream.sample(range(n), pi0_size))
    good_from = stream.randrange(1, rounds + 1)
    for r in range(1, rounds + 1):
        for p in range(n):
            if r >= good_from and (pi0_mask >> p) & 1:
                collection.record_mask(p, r, pi0_mask)
            else:
                collection.record_mask(p, r, bernoulli_mask(stream, n, 0.4) | (1 << p))
    return collection


def _candidate_kernel(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    pi0_size = stream.randrange(max(1, (2 * n) // 3 + 1), n + 1)
    pi0_mask = mask_of(stream.sample(range(n), pi0_size))
    for r in range(1, rounds + 1):
        for p in range(n):
            extras = bernoulli_mask(stream, n, 0.5) & ~pi0_mask
            collection.record_mask(p, r, pi0_mask | extras | (1 << p))
    return collection


def _candidate_single_uniform(n: int, rounds: int, stream: random.Random) -> HOCollection:
    collection = HOCollection(n)
    full = full_mask(n)
    special = stream.randrange(1, rounds + 1)
    for r in range(1, rounds + 1):
        if r == special:
            _fill(collection, r, _uniform_round(n, full))
        else:
            for p in range(n):
                collection.record_mask(p, r, bernoulli_mask(stream, n, 0.6) | (1 << p))
    return collection


CandidateGenerator = Callable[[int, int, "random.Random"], HOCollection]

#: The structured shapes the search draws from.  Deterministic shapes first:
#: they are witnesses (or counterexamples) for most of the paper's
#: predicates, so the common cases resolve without touching the stream.
CANDIDATE_GENERATORS: List[CandidateGenerator] = [
    _candidate_fault_free,
    _candidate_silent,
    _candidate_good_period,
    _candidate_kernel,
    _candidate_partition,
    _candidate_omission,
    _candidate_single_uniform,
]


def synthesize_collection(
    predicate: CommunicationPredicate,
    n: int,
    rounds: int = 20,
    satisfy: bool = True,
    seed: int = 0,
    rng: Optional[SeededRng] = None,
    max_attempts: int = 400,
) -> HOCollection:
    """Search for a heard-of collection on which ``predicate.holds`` is *satisfy*.

    The first pass tries every candidate shape once; subsequent passes
    re-draw shapes at random with fresh randomness.  Raises
    :class:`SynthesisError` when *max_attempts* candidates were all rejected.
    """
    if n <= 0:
        raise ValueError(f"number of processes must be positive, got {n}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    stream = oracle_rng(seed, rng).stream("oracle.synthesis")
    attempts = 0
    while attempts < max_attempts:
        if attempts < len(CANDIDATE_GENERATORS):
            generator = CANDIDATE_GENERATORS[attempts]
        else:
            generator = stream.choice(CANDIDATE_GENERATORS)
        candidate = generator(n, rounds, stream)
        attempts += 1
        if predicate.holds(candidate) == satisfy:
            return candidate
    raise SynthesisError(
        f"no collection with holds({predicate.name}) == {satisfy} found for "
        f"n={n}, rounds={rounds} within {max_attempts} attempts"
    )


def synthesize_oracle(
    predicate: CommunicationPredicate,
    n: int,
    rounds: int = 20,
    satisfy: bool = True,
    seed: int = 0,
    rng: Optional[SeededRng] = None,
    max_attempts: int = 400,
) -> CollectionOracle:
    """An oracle whose first *rounds* rounds satisfy (or violate) *predicate*.

    The synthesised prefix is replayed verbatim; later rounds are fault free
    by default, so machines can run past the prefix.  Note that a violating
    prefix followed by fault-free rounds may make the predicate hold on the
    *longer* recorded window -- cap the run at *rounds* (or pass
    ``default_mask=0`` to :class:`CollectionOracle`) when the violation must
    persist.
    """
    collection = synthesize_collection(
        predicate,
        n,
        rounds=rounds,
        satisfy=satisfy,
        seed=seed,
        rng=rng,
        max_attempts=max_attempts,
    )
    return CollectionOracle(collection)


__all__ = [
    "SynthesisError",
    "CollectionOracle",
    "synthesize_collection",
    "synthesize_oracle",
    "CANDIDATE_GENERATORS",
]
