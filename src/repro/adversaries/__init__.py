"""Heard-of oracles: the composable environment/adversary layer.

In the HO model the environment is fully described by the heard-of sets it
produces, so adversaries form an *algebra*: base fault families compose
through set operations on heard-of sets, switch over round windows, and can
even be synthesised from the communication predicate they are supposed to
satisfy or violate.

* :mod:`~repro.adversaries.base` -- the set-native and mask-native oracle
  base classes and the :class:`~repro.engine.rng.SeededRng` plumbing (all
  oracle randomness flows through named sub-streams: ``oracle.loss``,
  ``oracle.partition``, ``oracle.mobile``, ``oracle.burst``,
  ``oracle.coordinator``, ``oracle.kernel``, ``oracle.synthesis``);
* :mod:`~repro.adversaries.classic` -- the original oracle zoo (fault-free,
  static crashes, omissions, partitions, scripted, good-period, kernel);
* :mod:`~repro.adversaries.combinators` -- intersect / union / sequence /
  per-window switching over arbitrary oracles;
* :mod:`~repro.adversaries.dynamic` -- mobile omissions, rotating
  partitions with churn, bursty (Gilbert-Elliott) link loss, and the
  eventually-stable coordinator;
* :mod:`~repro.adversaries.synthesis` -- build an oracle that satisfies or
  violates any :class:`~repro.core.predicates.CommunicationPredicate`;
* :mod:`~repro.adversaries.batch` -- the batched (replica-vectorised)
  environment layer: the :class:`~repro.adversaries.batch.BatchOracle`
  protocol, broadcasting for the replica-invariant classic zoo and the
  automatic per-replica fallback loop for the stateful dynamic/combinator
  families.

``repro.core.adversary`` remains as a thin compatibility shim re-exporting
this package.
"""

from .batch import (
    BatchOracle,
    BroadcastBatchOracle,
    IntersectBatchOracle,
    PerReplicaBatchOracle,
    vectorize_oracles,
)
from .base import (
    HOOracle,
    HOOracleBase,
    MaskOracleBase,
    OracleAdapter,
    bernoulli_mask,
    ensure_oracle,
    oracle_rng,
)
from .classic import (
    CounterKernelOracle,
    FaultFreeOracle,
    GoodPeriodOracle,
    KernelOnlyOracle,
    PartitionOracle,
    RandomOmissionOracle,
    ScriptedOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
)
from .combinators import (
    IntersectOracle,
    SequenceOracle,
    UnionOracle,
    WindowSwitchOracle,
)
from .dynamic import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    MobileOmissionOracle,
    RotatingPartitionOracle,
)
from .synthesis import (
    CollectionOracle,
    SynthesisError,
    synthesize_collection,
    synthesize_oracle,
)

__all__ = [
    # base
    "HOOracle",
    "HOOracleBase",
    "MaskOracleBase",
    "OracleAdapter",
    "ensure_oracle",
    "oracle_rng",
    "bernoulli_mask",
    # classic zoo
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
    "CounterKernelOracle",
    # combinators
    "IntersectOracle",
    "UnionOracle",
    "SequenceOracle",
    "WindowSwitchOracle",
    # dynamic families
    "MobileOmissionOracle",
    "RotatingPartitionOracle",
    "BurstyLossOracle",
    "EventuallyStableCoordinatorOracle",
    # synthesis
    "SynthesisError",
    "CollectionOracle",
    "synthesize_collection",
    "synthesize_oracle",
    # batched environments
    "BatchOracle",
    "BroadcastBatchOracle",
    "PerReplicaBatchOracle",
    "IntersectBatchOracle",
    "vectorize_oracles",
]
