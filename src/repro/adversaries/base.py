"""Oracle base classes and the shared randomness plumbing.

In the HO model the environment is fully described by the heard-of sets it
produces.  An *oracle* decides, for every round and every receiving process,
the set of senders whose round-``r`` message actually arrives.  Oracles are
the round-level counterpart of fault injection: crashes, omissions, link
losses and partitions all reduce to removing senders from heard-of sets.

Two base classes exist, one per native representation:

* :class:`HOOracleBase` -- set-native: subclasses implement
  :meth:`~HOOracleBase.ho_set`; a generic :meth:`~HOOracleBase.ho_mask` is
  derived.  This keeps third-party set-based oracles trivial to write.
* :class:`MaskOracleBase` -- mask-native: subclasses implement
  :meth:`~HOOracleBase.ho_mask` over integer bitmasks
  (:mod:`repro.rounds.bitmask`); ``ho_set`` is derived.  Every oracle
  shipped in :mod:`repro.adversaries` is mask-native, so the round engine's
  hot path never builds a set object per (process, round).

All oracle randomness flows through named
:class:`~repro.engine.rng.SeededRng` sub-streams (``oracle.loss``,
``oracle.partition``, ...), never through private ``random.Random(seed)``
instances: one run seed controls every layer, and draws on one concern
(say, link loss) can never perturb another (say, partition churn).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..core.types import HOSet, ProcessId, Round, all_processes
from ..engine.rng import SeededRng

if TYPE_CHECKING:
    import random
from ..rounds.bitmask import full_mask, mask_of, mask_to_frozenset

#: The callable shape every oracle satisfies (same as repro.core.machine.HOOracle).
HOOracle = Callable[[Round, ProcessId], Iterable[ProcessId]]


def oracle_rng(seed: int = 0, rng: Optional[SeededRng] = None) -> SeededRng:
    """The :class:`SeededRng` an oracle draws from.

    Oracles accept either a plain *seed* (convenient at call sites) or a
    shared *rng* (so a scenario can hand one master ``SeededRng`` to the
    simulator, the fault injector and every oracle, putting the whole run
    under a single seed).  The *rng* takes precedence.
    """
    return rng if rng is not None else SeededRng(seed)


class HOOracleBase:
    """Base class for set-native heard-of oracles.

    An oracle is a callable ``(round, process) -> iterable of processes``.
    Subclasses implement :meth:`ho_set`; the base class handles bounds and
    derives the bitmask form used by the round engine's hot path.
    """

    #: Whether this oracle's heard-of sets depend only on (round, process) --
    #: no seeded randomness, no query-order state.  Replica-invariant oracles
    #: produce the same masks in every replica of a batch, so the batch
    #: backends broadcast one mask row instead of running the per-replica
    #: fallback loop (:mod:`repro.adversaries.batch`).  Conservative default:
    #: anything unmarked is treated as stateful.
    replica_invariant: bool = False

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self.n = n
        self._full = full_mask(n)

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        raise NotImplementedError

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        """``HO(process, round)`` as a bitmask, clamped to Pi."""
        return mask_of(q for q in self.ho_set(round, process) if 0 <= q < self.n)

    def __call__(self, round: Round, process: ProcessId) -> HOSet:
        return frozenset(self.ho_set(round, process)) & all_processes(self.n)


class MaskOracleBase(HOOracleBase):
    """Base class for mask-native heard-of oracles (the hot path).

    Subclasses implement :meth:`ho_mask`; ``ho_set`` and the callable form
    are derived, so mask-native oracles remain drop-in compatible with any
    set-based consumer.
    """

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        raise NotImplementedError

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        return mask_to_frozenset(self.ho_mask(round, process) & self._full)

    def __call__(self, round: Round, process: ProcessId) -> HOSet:
        return self.ho_set(round, process)


class OracleAdapter(MaskOracleBase):
    """Wrap a plain ``(round, process) -> iterable`` callable as an oracle.

    Combinators accept arbitrary callables by adapting them through this
    class; the callable's output is clamped to Pi.
    """

    def __init__(self, n: int, fn: HOOracle) -> None:
        super().__init__(n)
        self._fn = fn

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        return mask_of(q for q in self._fn(round, process) if 0 <= q < self.n)


def ensure_oracle(oracle: HOOracle, n: int) -> HOOracleBase:
    """Return *oracle* itself if it is an :class:`HOOracleBase` of size *n*, else adapt it."""
    if isinstance(oracle, HOOracleBase):
        if oracle.n != n:
            raise ValueError(f"oracle is sized for n={oracle.n}, expected n={n}")
        return oracle
    return OracleAdapter(n, oracle)


def bernoulli_mask(stream: random.Random, n: int, probability: float) -> int:
    """A mask in which each of the *n* bits is set independently with *probability*.

    Draws exactly *n* uniforms in ascending bit order, so layouts are stable
    under seed replay regardless of the caller's representation.
    """
    mask = 0
    bit = 1
    for _ in range(n):
        if stream.random() < probability:
            mask |= bit
        bit <<= 1
    return mask


__all__ = [
    "HOOracle",
    "HOOracleBase",
    "MaskOracleBase",
    "OracleAdapter",
    "ensure_oracle",
    "oracle_rng",
    "bernoulli_mask",
]
