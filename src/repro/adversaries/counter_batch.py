"""Replica-vectorised duals of the counter-based dynamic adversaries.

Each class here is the array twin of one family in
:mod:`repro.adversaries.dynamic`: it holds the per-replica 64-bit stream
keys (the very keys the scalar oracles hash under) and recomputes every
draw array-wide with :func:`repro.engine.counter.counter_hash_array`.
Because a counter-based draw is a pure function of ``(key, counter
tuple)``, the duals are bit-identical to the scalar oracles by construction
-- no query-order replay, no ``PerReplicaBatchOracle`` fallback loop.

:func:`counter_batch_dual` is the entry point used by
:func:`repro.adversaries.batch.vectorize_oracles`: given the scalar oracle
of every replica, it returns the vectorised dual when all replicas run the
same family with the same construction parameters (checked via each
family's ``counter_batch_signature``) and differ only in their stream key
-- exactly the shape the scenario builders produce, where replica ``i`` is
the single run seeded ``seed + i``.

The recurrent families keep their recurrences, vectorised over rows: the
rotating partition chains each epoch's assignment on the previous epoch's,
and the Gilbert-Elliott link states advance round by round.  Both advance
monotonically (engines query rounds in nondecreasing order) and, mirroring
the scalar memos, raise :class:`LookupError` on a query behind the frontier
rather than silently replaying history.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .._optional import require_numpy
from ..batch.arrays import pack_bools
from ..engine.counter import counter_hash_array, units_of_counters
from ..rounds.bitmask import WORD_BITS, word_count
from .classic import CounterKernelOracle
from .dynamic import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    MobileOmissionOracle,
    RotatingPartitionOracle,
)


class _CounterDualBase:
    """Shared scaffolding: per-row keys, full/self word constants."""

    def __init__(self, oracles: Sequence[Any]) -> None:
        np = require_numpy()
        first = oracles[0]
        self.np = np
        self.n = first.n
        self.replicas = len(oracles)
        # The per-replica stream keys -- the same derive_seed(seed_i, name)
        # values the scalar oracles hash under (friend access within the
        # adversaries package).
        self.keys = np.array([o._ctr.key for o in oracles], dtype=np.uint64)
        self._words = word_count(self.n)
        n, W = self.n, self._words
        self._arange = np.arange(n, dtype=np.uint64)
        # (n, W) uint64 with exactly the receiver's own bit set per row.
        self_bits = np.zeros((n, W), dtype=np.uint64)
        self_bits[np.arange(n), np.arange(n) // WORD_BITS] = np.uint64(1) << (
            self._arange % np.uint64(WORD_BITS)
        )
        self._self_bits = self_bits
        # (n, W) full-mask rows (every process heard).
        eye = np.ones((1, n), dtype=bool)
        self._full_words = np.broadcast_to(pack_bools(eye, n), (n, W))

    def _full_rows(self) -> Any:
        """The all-heard ``(R, n, W)`` array (stabilised / healed rounds)."""
        np = self.np
        return np.broadcast_to(
            self._full_words, (self.replicas, self.n, self._words)
        )


class MobileOmissionBatchDual(_CounterDualBase):
    """Array twin of :class:`~repro.adversaries.dynamic.MobileOmissionOracle`.

    The scalar oracle silences the *faults* processes with the smallest
    ``(hash(round, q), q)``; the dual sorts the same ``(R, n)`` hash array
    with a stable argsort (ties break toward lower ``q``, matching the
    scalar tuple order) and packs the complement.
    """

    def __init__(self, oracles: Sequence[MobileOmissionOracle]) -> None:
        super().__init__(oracles)
        first = oracles[0]
        self.faults = first.faults
        self.stable_from = first.stable_from

    def round_masks(self, round: int, active: Any) -> Any:
        np = self.np
        if (
            self.stable_from is not None and round >= self.stable_from
        ) or self.faults == 0:
            return self._full_rows()
        hashes = counter_hash_array(
            np, self.keys[:, None], [np.uint64(round), self._arange]
        )
        order = np.argsort(hashes, axis=1, kind="stable")
        silenced = np.zeros((self.replicas, self.n), dtype=bool)
        np.put_along_axis(silenced, order[:, : self.faults], True, axis=1)
        base = self._full_words[0] & ~pack_bools(silenced, self.n)
        return base[:, None, :] | self._self_bits[None, :, :]


class RotatingPartitionBatchDual(_CounterDualBase):
    """Array twin of :class:`~repro.adversaries.dynamic.RotatingPartitionOracle`.

    Keeps the per-row block assignment ``(R, n)`` and chains each epoch on
    the previous one exactly like the scalar recurrence; the per-epoch mask
    array is memoised for the rounds of the current epoch only.
    """

    def __init__(self, oracles: Sequence[RotatingPartitionOracle]) -> None:
        super().__init__(oracles)
        first = oracles[0]
        self.blocks = first.blocks
        self.period = first.period
        self.churn = first.churn
        self.heal_from = first.heal_from
        self._assignment: Optional[Any] = None
        self._next_epoch = 0
        self._epoch: Optional[int] = None
        self._epoch_words: Optional[Any] = None

    def _advance_to(self, epoch: int) -> None:
        np = self.np
        while self._next_epoch <= epoch:
            e = self._next_epoch
            block_draw = counter_hash_array(
                np,
                self.keys[:, None],
                [np.uint64(1), np.uint64(e), self._arange],
            ) % np.uint64(self.blocks)
            if self._assignment is None:
                assignment = block_draw
            else:
                churn_u = units_of_counters(
                    np,
                    self.keys[:, None],
                    [np.uint64(0), np.uint64(e), self._arange],
                )
                assignment = np.where(
                    churn_u < self.churn, block_draw, self._assignment
                )
            self._assignment = assignment
            self._next_epoch += 1
        if self._epoch != epoch:
            same_block = self._assignment[:, :, None] == self._assignment[:, None, :]
            self._epoch_words = pack_bools(same_block, self.n)
            self._epoch = epoch

    def round_masks(self, round: int, active: Any) -> Any:
        if self.heal_from is not None and round >= self.heal_from:
            return self._full_rows()
        epoch = (round - 1) // self.period
        if epoch < self._next_epoch - 1:
            raise LookupError(
                f"partition epoch {epoch} is behind the batch frontier "
                f"({self._next_epoch - 1}); the assignment recurrence only "
                "advances forward"
            )
        self._advance_to(epoch)
        return self._epoch_words


class BurstyLossBatchDual(_CounterDualBase):
    """Array twin of :class:`~repro.adversaries.dynamic.BurstyLossOracle`.

    The ``(R, n, n)`` link-state matrix advances one round at a time (the
    Gilbert-Elliott chain is a recurrence); state and loss coins are the
    scalar oracle's counter draws ``(0, r, p, q)`` and ``(1, r, p, q)``
    computed array-wide.  The scalar path skips the loss coin when the loss
    probability is zero; the dual always computes it, which is equivalent
    because a uniform in ``[0, 1)`` is never below zero and counter draws
    have no cursor to shift.
    """

    def __init__(self, oracles: Sequence[BurstyLossOracle]) -> None:
        super().__init__(oracles)
        np = self.np
        first = oracles[0]
        self.p_burst = first.p_burst
        self.p_recover = first.p_recover
        self.loss_burst = first.loss_burst
        self.loss_good = first.loss_good
        self.stable_from = first.stable_from
        self._bursty = np.zeros((self.replicas, self.n, self.n), dtype=bool)
        self._computed_round = 0
        self._round_words: Optional[Any] = None
        eye = np.eye(self.n, dtype=bool)
        self._eye = eye[None, :, :]

    def _advance_to(self, round: int) -> None:
        np = self.np
        p_axis = self._arange[:, None]
        q_axis = self._arange[None, :]
        keys = self.keys[:, None, None]
        while self._computed_round < round:
            self._computed_round += 1
            r = np.uint64(self._computed_round)
            u_state = units_of_counters(
                np, keys, [np.uint64(0), r, p_axis, q_axis]
            )
            bursty = np.where(
                self._bursty, u_state >= self.p_recover, u_state < self.p_burst
            )
            self._bursty = bursty
            loss = np.where(bursty, self.loss_burst, self.loss_good)
            u_loss = units_of_counters(
                np, keys, [np.uint64(1), r, p_axis, q_axis]
            )
            heard = self._eye | (u_loss >= loss)
            self._round_words = pack_bools(heard, self.n)

    def round_masks(self, round: int, active: Any) -> Any:
        if self.stable_from is not None and round >= self.stable_from:
            return self._full_rows()
        if round < self._computed_round:
            raise LookupError(
                f"bursty-loss round {round} is behind the batch frontier "
                f"({self._computed_round}); link states only advance forward"
            )
        self._advance_to(round)
        return self._round_words


class EventuallyStableCoordinatorBatchDual(_CounterDualBase):
    """Array twin of :class:`~repro.adversaries.dynamic.EventuallyStableCoordinatorOracle`.

    Stateless per round: the pretender draw ``(0, round)``, the flakiness
    coins ``(1, round, p)`` and the background coins ``(2, round, p, q)``
    are all recomputed array-wide.  The write order matches the scalar
    oracle: background mask, then the pretender bit is forced to the
    flakiness outcome, then the self bit is set on top.
    """

    def __init__(
        self, oracles: Sequence[EventuallyStableCoordinatorOracle]
    ) -> None:
        super().__init__(oracles)
        first = oracles[0]
        self.stable_from = first.stable_from
        self.flaky_probability = first.flaky_probability
        self.background_probability = first.background_probability

    def round_masks(self, round: int, active: Any) -> Any:
        np = self.np
        if round >= self.stable_from:
            return self._full_rows()
        r = np.uint64(round)
        n = self.n
        pretender = counter_hash_array(np, self.keys, [np.uint64(0), r]) % np.uint64(n)
        heard = (
            units_of_counters(
                np,
                self.keys[:, None, None],
                [np.uint64(2), r, self._arange[:, None], self._arange[None, :]],
            )
            < self.background_probability
        )
        flaky_ok = (
            units_of_counters(
                np, self.keys[:, None], [np.uint64(1), r, self._arange]
            )
            >= self.flaky_probability
        )
        idx = np.broadcast_to(
            pretender.astype(np.int64)[:, None, None], (self.replicas, n, 1)
        )
        np.put_along_axis(heard, idx, flaky_ok[:, :, None], axis=2)
        diag = np.arange(n)
        heard[:, diag, diag] = True
        return pack_bools(heard, n)


class CounterKernelBatchDual(_CounterDualBase):
    """Array twin of :class:`~repro.adversaries.classic.CounterKernelOracle`.

    Stateless per round: the member-extras coins ``(0, r, p, q)`` and the
    outsider coins ``(1, r, p, q)`` are recomputed array-wide; member rows
    are ``pi0 | extras`` (extras restricted to outsiders), outsider rows an
    arbitrary subset with the self bit forced, composed per receiver row.
    """

    def __init__(self, oracles: Sequence[CounterKernelOracle]) -> None:
        super().__init__(oracles)
        np = self.np
        first = oracles[0]
        self.pi0 = first.pi0
        member = np.zeros(self.n, dtype=bool)
        for p in first.pi0:
            member[p] = True
        self._member = member
        self._pi0_words = pack_bools(member[None, :], self.n)[0]

    def round_masks(self, round: int, active: Any) -> Any:
        np = self.np
        r = np.uint64(round)
        keys = self.keys[:, None, None]
        p_axis = self._arange[:, None]
        q_axis = self._arange[None, :]
        extras = (
            units_of_counters(np, keys, [np.uint64(0), r, p_axis, q_axis]) < 0.5
        ) & (~self._member)[None, None, :]
        member_words = pack_bools(extras, self.n) | self._pi0_words[None, None, :]
        outsider = (
            units_of_counters(np, keys, [np.uint64(1), r, p_axis, q_axis]) < 0.5
        )
        outsider_words = pack_bools(outsider, self.n) | self._self_bits[None, :, :]
        return np.where(
            self._member[None, :, None], member_words, outsider_words
        )


_DUALS = {
    CounterKernelOracle: CounterKernelBatchDual,
    MobileOmissionOracle: MobileOmissionBatchDual,
    RotatingPartitionOracle: RotatingPartitionBatchDual,
    BurstyLossOracle: BurstyLossBatchDual,
    EventuallyStableCoordinatorOracle: EventuallyStableCoordinatorBatchDual,
}


def counter_batch_dual(oracles: Sequence[Any], replicas: int) -> Optional[Any]:
    """The vectorised dual of per-replica counter-based oracles, or None.

    Applicable when every replica's oracle is the same dynamic family with
    the same construction parameters (``counter_batch_signature``), so that
    the replicas differ only in their stream keys -- the shape produced by
    seeding replica ``i`` as the single run ``seed + i``.  Returns None for
    any other oracle (the caller falls through to its other strategies).
    """
    first = oracles[0]
    dual_cls = _DUALS.get(type(first))
    if dual_cls is None:
        return None
    signature = first.counter_batch_signature()
    for oracle in oracles[1:]:
        if type(oracle) is not type(first):
            return None
        if oracle.counter_batch_signature() != signature:
            return None
    return dual_cls(list(oracles))


__all__ = [
    "CounterKernelBatchDual",
    "MobileOmissionBatchDual",
    "RotatingPartitionBatchDual",
    "BurstyLossBatchDual",
    "EventuallyStableCoordinatorBatchDual",
    "counter_batch_dual",
]
