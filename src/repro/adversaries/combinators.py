"""Oracle combinators: a small algebra over heard-of environments.

Because every benign fault is just an absence from a heard-of set, fault
models *compose* by set algebra on the heard-of sets themselves:

* :class:`IntersectOracle` -- both adversaries act: a sender is heard only
  if every component hears it (composition of fault models: the union of
  the faults);
* :class:`UnionOracle` -- either environment suffices: a sender is heard if
  any component hears it (composition of guarantees);
* :class:`SequenceOracle` -- phase scripting: run each component for a fixed
  number of rounds, then move to the next (bad period, then good period,
  then churn, ...);
* :class:`WindowSwitchOracle` -- per-window switching: rotate through a set
  of components every *window* rounds, forever.

All combinators work on bitmasks end-to-end, accept any oracle callable
(plain callables are adapted), and are themselves oracles -- so they nest:
``IntersectOracle(n, SequenceOracle(n, ...), RandomOmissionOracle(n, ...))``
is a perfectly good environment.

:class:`IntersectOracle` and :class:`UnionOracle` always query *every*
component, even once the accumulated mask is already empty (or full):
stateful components (the dynamic families, ``RandomOmissionOracle``, ...)
draw lazily per query, so skipping one would make its seeded sub-stream
advance differently depending on *sibling* outcomes -- violating the
documented rule that concerns cannot perturb each other.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.types import ProcessId, Round
from .base import HOOracle, HOOracleBase, MaskOracleBase, ensure_oracle


def _adapt_all(n: int, oracles: Sequence[HOOracle]) -> List[HOOracleBase]:
    if not oracles:
        raise ValueError("at least one component oracle is required")
    return [ensure_oracle(oracle, n) for oracle in oracles]


def _all_replica_invariant(oracles: Sequence[HOOracleBase]) -> bool:
    # Combinators are replica-invariant exactly when every component is:
    # set algebra over deterministic masks stays deterministic, and one
    # stateful component makes the whole composition per-replica.
    return all(oracle.replica_invariant for oracle in oracles)


class IntersectOracle(MaskOracleBase):
    """Hear a sender only if *every* component environment delivers it.

    This is how independent fault models compose: a static-crash oracle
    intersected with a bursty-loss oracle yields an environment with both
    crashes and bursts.
    """

    def __init__(self, n: int, *oracles: HOOracle) -> None:
        super().__init__(n)
        self.oracles = _adapt_all(n, oracles)
        self.replica_invariant = _all_replica_invariant(self.oracles)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        # Every component is queried even after the mask empties: a skipped
        # stateful component would consume its RNG sub-stream differently
        # depending on sibling outcomes.
        mask = self._full
        for oracle in self.oracles:
            mask &= oracle.ho_mask(round, process)
        return mask


class UnionOracle(MaskOracleBase):
    """Hear a sender if *any* component environment delivers it.

    Useful for modelling redundant channels (a message arrives if any path
    survives) and for weakening an adversary in controlled steps.
    """

    def __init__(self, n: int, *oracles: HOOracle) -> None:
        super().__init__(n)
        self.oracles = _adapt_all(n, oracles)
        self.replica_invariant = _all_replica_invariant(self.oracles)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        # As in IntersectOracle: never short-circuit past a component, so
        # stateful components' draw sequences stay sibling-independent.
        mask = 0
        for oracle in self.oracles:
            mask |= oracle.ho_mask(round, process)
        return mask & self._full


class SequenceOracle(MaskOracleBase):
    """Run each component oracle for a fixed number of rounds, in sequence.

    *segments* is a sequence of ``(oracle, rounds)`` pairs; ``rounds`` may
    be ``None`` only for the final segment, meaning "forever".  Component
    oracles see *local* round numbers (rebased to start at 1), so a segment
    behaves exactly as its oracle would from a fresh start -- e.g. a
    ``StaticCrashOracle(n, {p: 1})`` segment of length 5 models a crash that
    lasts 5 rounds, and a trailing ``FaultFreeOracle`` models recovery.

    Queries past the last finite segment fall through to the final segment.
    """

    def __init__(
        self, n: int, segments: Sequence[Tuple[HOOracle, Optional[int]]]
    ) -> None:
        super().__init__(n)
        if not segments:
            raise ValueError("at least one segment is required")
        starts: List[Round] = []
        oracles: List[HOOracleBase] = []
        start = 1
        for index, (oracle, rounds) in enumerate(segments):
            if rounds is None and index != len(segments) - 1:
                raise ValueError("only the final segment may be open-ended (rounds=None)")
            if rounds is not None and rounds <= 0:
                raise ValueError(f"segment lengths must be positive, got {rounds}")
            starts.append(start)
            oracles.append(ensure_oracle(oracle, n))
            if rounds is not None:
                start += rounds
        self._starts = starts
        self._oracles = oracles
        self.replica_invariant = _all_replica_invariant(oracles)

    def _segment_for(self, round: Round) -> Tuple[HOOracleBase, Round]:
        index = len(self._starts) - 1
        while index > 0 and round < self._starts[index]:
            index -= 1
        return self._oracles[index], round - self._starts[index] + 1

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        oracle, local_round = self._segment_for(round)
        return oracle.ho_mask(local_round, process) & self._full


class WindowSwitchOracle(MaskOracleBase):
    """Per-window switching: rotate through component oracles every *window* rounds.

    Rounds ``1..window`` use the first component, ``window+1..2*window`` the
    second, and so on, wrapping around forever.  Components see local round
    numbers within their window occurrence, counted per visit, so a
    component behaves identically on every visit -- this models environments
    that *churn* between regimes (e.g. alternating partitions) rather than
    ones that settle.

    For lazily-drawing components (the :mod:`repro.adversaries.dynamic`
    families) the identical-visit guarantee rests on their per-round memos:
    when the window exceeds their retention
    (:data:`~repro.adversaries.dynamic.MEMO_RETAIN_ROUNDS`), construct the
    component with ``retain_rounds >= window`` or the re-visit raises.
    """

    def __init__(self, n: int, oracles: Sequence[HOOracle], window: int = 1) -> None:
        super().__init__(n)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.oracles = _adapt_all(n, oracles)
        self.replica_invariant = _all_replica_invariant(self.oracles)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        epoch = (round - 1) // self.window
        local = (round - 1) % self.window + 1
        oracle = self.oracles[epoch % len(self.oracles)]
        return oracle.ho_mask(local, process) & self._full


__all__ = [
    "IntersectOracle",
    "UnionOracle",
    "SequenceOracle",
    "WindowSwitchOracle",
]
