"""Dynamic and transient adversary families: churn, bursts, mobility.

The classic zoo (:mod:`repro.adversaries.classic`) covers static and
memoryless fault models.  Real disruption-tolerant systems -- mobile ad-hoc
networks, delay-tolerant store-and-forward meshes -- exhibit *structured*
dynamics: faults that move, partitions that rotate with churn, losses that
come in bursts, leaders that eventually stabilise.  The families below make
those environments expressible at the heard-of level:

* :class:`MobileOmissionOracle` -- at most *faults* senders are silenced per
  round, and the silenced set moves (Santoro-Widmayer-style mobile
  transmission faults);
* :class:`RotatingPartitionOracle` -- the network is partitioned into
  blocks; the partition is redrawn every *period* rounds with per-process
  churn;
* :class:`BurstyLossOracle` -- per-link Gilbert-Elliott loss: each directed
  link flips between a good and a bursty state, so losses cluster in time
  instead of being independent;
* :class:`EventuallyStableCoordinatorOracle` -- before stabilisation, a
  changing pretender coordinator is heard unreliably; from *stable_from* on
  the system behaves synchronously (the round-level shape of an
  eventually-stable leader).

All are mask-native, memoise per (round, process), support an eventual
stabilisation round (so liveness experiments terminate), and draw from
named *counter-based* streams (:meth:`~repro.engine.rng.SeededRng.
counter_stream`: ``oracle.mobile``, ``oracle.partition``, ``oracle.burst``,
``oracle.coordinator``).  A draw is a pure function of the stream key and a
counter tuple ``(tag, round, ...)`` -- no sequential cursor -- so the
replica-vectorised batch duals (:mod:`repro.adversaries.batch`) recompute
the very same values array-wide, in any order, bit-identically; each oracle
exposes its key and its :meth:`counter_batch_signature` for that purpose.

The memos are *bounded*: like the engine's ``_BITS_CACHE_LIMIT``, an
oracle driven for a long run must not accumulate O(rounds · n) state, so
only the :data:`MEMO_RETAIN_ROUNDS` most recent rounds are retained.
Eviction never changes a draw -- counter-based values do not depend on when
they are computed -- but the recurrent families (partition churn chains on
the previous epoch, Gilbert-Elliott states advance round by round) would
have to replay their whole history to honour a stale re-query, so a lookup
at or below the eviction horizon still raises instead of silently paying
that replay.  Engines query rounds in nondecreasing order and
:class:`~repro.adversaries.combinators.WindowSwitchOracle` rebases its
components to small local rounds, so the window is invisible in practice.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.types import ProcessId, Round
from ..engine.rng import SeededRng
from ..rounds.bitmask import mask_of
from .base import MaskOracleBase, oracle_rng

#: How much recent history a dynamic oracle's memo retains before evicting:
#: round-keyed memos keep this many rounds, (round, process)-keyed memos
#: this many rounds' worth of entries, epoch-keyed memos this many epochs.
#: Per-oracle override: the ``retain_rounds`` constructor argument (needed
#: e.g. for a WindowSwitchOracle component whose window exceeds this).
MEMO_RETAIN_ROUNDS = 256


def _retention(retain_rounds: Optional[int]) -> int:
    if retain_rounds is None:
        return MEMO_RETAIN_ROUNDS
    if retain_rounds <= 0:
        raise ValueError(f"retain_rounds must be positive, got {retain_rounds}")
    return retain_rounds


class _BoundedMemo:
    """An insertion-ordered memo bounded to the most recent entries.

    Counter-based draws could in principle be recomputed after eviction,
    but the recurrent families would have to replay every epoch/round since
    the beginning to do so; a lookup at or below the eviction horizon
    therefore raises :class:`LookupError` instead of silently paying an
    O(rounds) replay.  Keys must be mutually comparable and arrive in
    (roughly) ascending order -- true for engine-driven queries.
    """

    __slots__ = ("_entries", "_limit", "_horizon", "_label")

    def __init__(self, limit: int, label: str) -> None:
        self._entries: Dict[Any, Any] = {}
        self._limit = limit
        self._horizon: Any = None
        self._label = label

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any:
        """The memoised value for *key*, or None when it is yet to be drawn."""
        value = self._entries.get(key)
        if value is None and self._horizon is not None and key <= self._horizon:
            raise LookupError(
                f"{self._label} {key!r} was evicted (only the most recent "
                f"{self._limit} entries are retained); construct the oracle "
                "with a larger retain_rounds when old rounds must stay "
                "re-queryable, e.g. as a WindowSwitchOracle component whose "
                "window exceeds the retention"
            )
        return value

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        while len(self._entries) > self._limit:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            if self._horizon is None or oldest > self._horizon:
                self._horizon = oldest


class MobileOmissionOracle(MaskOracleBase):
    """Mobile omission faults: up to *faults* senders are silenced per round.

    Every round, the silenced set is the *faults* processes with the
    smallest counter draws ``hash(round, q)`` on the ``oracle.mobile``
    stream -- a fresh uniform subset per round; their round messages are
    lost at every receiver (send omission), while every other transmission
    arrives.  The faulty set *moves*: over time every process is hit, but
    never more than *faults* of them in any single round -- the classic
    mobile-failure adversary, which no static crash model can express.

    From *stable_from* on (if given) no faults occur, so runs eventually
    satisfy any good-period predicate.  Receivers always hear themselves.
    """

    def __init__(
        self,
        n: int,
        faults: int = 1,
        seed: int = 0,
        stable_from: Optional[Round] = None,
        rng: Optional[SeededRng] = None,
        retain_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if not 0 <= faults <= n:
            raise ValueError(f"faults must be in 0..{n}, got {faults}")
        self.faults = faults
        self.stable_from = stable_from
        self._ctr = oracle_rng(seed, rng).counter_stream("oracle.mobile")
        self._silenced = _BoundedMemo(_retention(retain_rounds), "mobile-omission round")

    def counter_batch_signature(self) -> Tuple[Any, ...]:
        """The construction state a batch dual must see shared by all replicas."""
        return ("mobile-omission", self.n, self.faults, self.stable_from)

    def _silenced_mask(self, round: Round) -> int:
        mask = self._silenced.get(round)
        if mask is None:
            ctr = self._ctr
            order = sorted(range(self.n), key=lambda q: (ctr.hash(round, q), q))
            mask = mask_of(order[: self.faults])
            self._silenced.put(round, mask)
        return mask

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if self.stable_from is not None and round >= self.stable_from:
            return self._full
        if self.faults == 0:
            return self._full
        return (self._full & ~self._silenced_mask(round)) | (1 << process)


class RotatingPartitionOracle(MaskOracleBase):
    """A partition that is redrawn every *period* rounds, with churn.

    The process set is split into *blocks* blocks.  Every *period* rounds a
    new epoch starts: each process keeps its block with probability
    ``1 - churn`` and otherwise moves to a uniformly random block.  Both
    draws are counter-based on the ``oracle.partition`` stream -- churn at
    ``(0, epoch, q)``, the new block at ``(1, epoch, q)`` -- but the
    *assignment* still chains on the previous epoch, so epochs are computed
    in order.  ``churn=1.0`` reshuffles the partition completely each
    epoch; ``churn=0.0`` freezes the initial random partition.  Within an
    epoch, a process hears exactly its block (which always contains itself).

    From *heal_from* on (if given) the partition heals and communication is
    fault free.  This is the round-level shape of the partition-heavy,
    churning link dynamics of disruption-tolerant networks.
    """

    def __init__(
        self,
        n: int,
        blocks: int = 2,
        period: int = 5,
        churn: float = 0.2,
        seed: int = 0,
        heal_from: Optional[Round] = None,
        rng: Optional[SeededRng] = None,
        retain_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= churn <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {churn}")
        self.blocks = blocks
        self.period = period
        self.churn = churn
        self.heal_from = heal_from
        self._ctr = oracle_rng(seed, rng).counter_stream("oracle.partition")
        #: the most recent epoch's per-process block assignment -- churn only
        #: needs the previous epoch, so earlier assignments are not retained.
        self._last_assignment: Optional[List[int]] = None
        #: index of the next epoch to be drawn; epochs are computed in order
        #: because each assignment chains on the previous one.
        self._next_epoch = 0
        #: epoch -> per-process block mask, precomputed once per epoch so
        #: that ho_mask is a lookup (the bitmask hot path); bounded to the
        #: most recent epochs.
        self._epoch_masks = _BoundedMemo(_retention(retain_rounds), "partition epoch")

    def counter_batch_signature(self) -> Tuple[Any, ...]:
        """The construction state a batch dual must see shared by all replicas."""
        return (
            "rotating-partition",
            self.n,
            self.blocks,
            self.period,
            self.churn,
            self.heal_from,
        )

    def _masks_for_epoch(self, epoch: int) -> List[int]:
        masks = self._epoch_masks.get(epoch)
        if masks is not None:
            return masks
        while self._next_epoch <= epoch:
            e = self._next_epoch
            ctr = self._ctr
            if self._last_assignment is None:
                assignment = [ctr.mod(self.blocks, 1, e, q) for q in range(self.n)]
            else:
                previous = self._last_assignment
                assignment = [
                    ctr.mod(self.blocks, 1, e, q)
                    if ctr.unit(0, e, q) < self.churn
                    else previous[q]
                    for q in range(self.n)
                ]
            self._last_assignment = assignment
            block_masks = [0] * self.blocks
            for q, block in enumerate(assignment):
                block_masks[block] |= 1 << q
            self._epoch_masks.put(e, [block_masks[block] for block in assignment])
            self._next_epoch += 1
        return self._epoch_masks.get(epoch)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if self.heal_from is not None and round >= self.heal_from:
            return self._full
        return self._masks_for_epoch((round - 1) // self.period)[process]


class BurstyLossOracle(MaskOracleBase):
    """Per-link Gilbert-Elliott loss: bursts, not independent coin flips.

    Each directed link (sender -> receiver) carries a two-state Markov
    chain: in the *good* state a transmission is lost with probability
    *loss_good* (default 0), in the *burst* state with probability
    *loss_burst* (default 1).  Per round, a good link enters a burst with
    probability *p_burst* and a bursty link recovers with probability
    *p_recover* -- so the expected burst length is ``1 / p_recover`` rounds,
    and losses cluster the way interference and congestion actually behave.

    Draws are counter-based on the ``oracle.burst`` stream: the state
    transition of link ``q -> p`` in round ``r`` consumes
    ``unit(0, r, p, q)``, the loss coin ``unit(1, r, p, q)``; link states
    still advance round by round (the Markov chain is a recurrence), so any
    query order replays identically.  From *stable_from* on (if given) all
    links are forced good and lossless.  Receivers always hear themselves.
    """

    def __init__(
        self,
        n: int,
        p_burst: float = 0.1,
        p_recover: float = 0.3,
        loss_burst: float = 1.0,
        loss_good: float = 0.0,
        seed: int = 0,
        stable_from: Optional[Round] = None,
        rng: Optional[SeededRng] = None,
        retain_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        for name, value in (
            ("p_burst", p_burst),
            ("p_recover", p_recover),
            ("loss_burst", loss_burst),
            ("loss_good", loss_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_burst = p_burst
        self.p_recover = p_recover
        self.loss_burst = loss_burst
        self.loss_good = loss_good
        self.stable_from = stable_from
        self._ctr = oracle_rng(seed, rng).counter_stream("oracle.burst")
        #: bursty-link masks per receiver, advanced one round at a time:
        #: ``_burst_state[p]`` has bit q set iff link q -> p is in a burst.
        self._burst_state: List[int] = [0] * n
        self._computed_round: Round = 0
        self._memo = _BoundedMemo(
            _retention(retain_rounds) * n, "bursty-loss (round, process)"
        )

    def counter_batch_signature(self) -> Tuple[Any, ...]:
        """The construction state a batch dual must see shared by all replicas."""
        return (
            "bursty-loss",
            self.n,
            self.p_burst,
            self.p_recover,
            self.loss_burst,
            self.loss_good,
            self.stable_from,
        )

    def _advance_to(self, round: Round) -> None:
        while self._computed_round < round:
            self._computed_round += 1
            current = self._computed_round
            ctr = self._ctr
            for p in range(self.n):
                state = self._burst_state[p]
                new_state = 0
                heard = 0
                bit = 1
                for q in range(self.n):
                    u = ctr.unit(0, current, p, q)
                    if state & bit:
                        bursty = u >= self.p_recover
                    else:
                        bursty = u < self.p_burst
                    if bursty:
                        new_state |= bit
                    loss = self.loss_burst if bursty else self.loss_good
                    # Skipping the loss coin when it cannot lose is safe:
                    # counter draws have no cursor to shift.
                    if q == p or loss <= 0.0 or ctr.unit(1, current, p, q) >= loss:
                        heard |= bit
                    bit <<= 1
                self._burst_state[p] = new_state
                self._memo.put((current, p), heard)

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if self.stable_from is not None and round >= self.stable_from:
            return self._full
        self._advance_to(round)
        # get() raises for rounds already evicted from the bounded memo;
        # link states only advance forward, so re-drawing is impossible.
        return self._memo.get((round, process))


class EventuallyStableCoordinatorOracle(MaskOracleBase):
    """A coordinator that keeps changing until the system stabilises.

    Before *stable_from*, each round has a *pretender* coordinator (the
    counter draw ``(0, round)`` on the ``oracle.coordinator`` stream,
    modulo n); every process hears the pretender with probability
    ``1 - flaky_probability`` (the flakiness coin ``unit(1, round, p)``),
    itself always, and each other process q with probability
    *background_probability* (the coin ``unit(2, round, p, q)``) -- the
    round-level shape of an unreliable leader-election phase.  From
    *stable_from* on, communication is fault free (and :meth:`coordinator`
    reports the fixed *stable_coordinator*), which is exactly the
    eventually-stable-leader assumption coordinated algorithms such as
    LastVoting thrive on.
    """

    def __init__(
        self,
        n: int,
        stable_from: Round,
        stable_coordinator: ProcessId = 0,
        flaky_probability: float = 0.3,
        background_probability: float = 0.4,
        seed: int = 0,
        rng: Optional[SeededRng] = None,
        retain_rounds: Optional[int] = None,
    ) -> None:
        super().__init__(n)
        if stable_from <= 0:
            raise ValueError(f"stable_from must be >= 1, got {stable_from}")
        if not 0 <= stable_coordinator < n:
            raise ValueError(f"stable_coordinator outside 0..{n - 1}")
        for name, value in (
            ("flaky_probability", flaky_probability),
            ("background_probability", background_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.stable_from = stable_from
        self.stable_coordinator = stable_coordinator
        self.flaky_probability = flaky_probability
        self.background_probability = background_probability
        self._ctr = oracle_rng(seed, rng).counter_stream("oracle.coordinator")
        retain = _retention(retain_rounds)
        self._pretenders = _BoundedMemo(retain, "coordinator round")
        self._memo = _BoundedMemo(retain * n, "coordinator (round, process)")

    def counter_batch_signature(self) -> Tuple[Any, ...]:
        """The construction state a batch dual must see shared by all replicas."""
        return (
            "eventually-stable-coordinator",
            self.n,
            self.stable_from,
            self.stable_coordinator,
            self.flaky_probability,
            self.background_probability,
        )

    def coordinator(self, round: Round) -> ProcessId:
        """The coordinator of *round*: the pretender before stabilisation, fixed after."""
        if round >= self.stable_from:
            return self.stable_coordinator
        pretender = self._pretenders.get(round)
        if pretender is None:
            pretender = self._ctr.mod(self.n, 0, round)
            self._pretenders.put(round, pretender)
        return pretender

    def ho_mask(self, round: Round, process: ProcessId) -> int:
        if round >= self.stable_from:
            return self._full
        key = (round, process)
        mask = self._memo.get(key)
        if mask is None:
            pretender = self.coordinator(round)
            ctr = self._ctr
            mask = 0
            bit = 1
            for q in range(self.n):
                if ctr.unit(2, round, process, q) < self.background_probability:
                    mask |= bit
                bit <<= 1
            if ctr.unit(1, round, process) >= self.flaky_probability:
                mask |= 1 << pretender
            else:
                mask &= ~(1 << pretender)
            mask |= 1 << process
            self._memo.put(key, mask)
        return mask


__all__ = [
    "MEMO_RETAIN_ROUNDS",
    "MobileOmissionOracle",
    "RotatingPartitionOracle",
    "BurstyLossOracle",
    "EventuallyStableCoordinatorOracle",
]
