"""Heard-of oracles: the environment/adversary of the round-level HO machine.

In the HO model the environment is fully described by the heard-of sets it
produces.  An *oracle* decides, for every round and every receiving process,
the set of senders whose round-``r`` message actually arrives.  Oracles are
the round-level counterpart of fault injection: crashes, omissions, link
losses and partitions all reduce to removing senders from heard-of sets.

The oracles in this module are used by unit tests, property-based tests, the
examples, and by benchmark E1 (Table 1): some are built to *satisfy* a given
communication predicate (so that liveness can be demonstrated), others are
built to *violate* it (so that the loss of liveness -- but never of safety --
can be demonstrated).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set

from .types import HOSet, ProcessId, Round, all_processes, validate_process_subset


class HOOracleBase:
    """Base class for heard-of oracles.

    An oracle is a callable ``(round, process) -> iterable of processes``.
    Subclasses implement :meth:`ho_set`; the base class handles bounds.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self.n = n

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        raise NotImplementedError

    def __call__(self, round: Round, process: ProcessId) -> HOSet:
        return frozenset(self.ho_set(round, process)) & all_processes(self.n)


class FaultFreeOracle(HOOracleBase):
    """No transmission faults at all: ``HO(p, r) = Pi`` for every p and r."""

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        return all_processes(self.n)


class StaticCrashOracle(HOOracleBase):
    """Permanent-crash (SP) faults: crashed processes are never heard of again.

    *crash_rounds* maps a process to the first round in which its messages
    are no longer received (it "crashed before sending" in that round).
    """

    def __init__(self, n: int, crash_rounds: Mapping[ProcessId, Round]) -> None:
        super().__init__(n)
        for p, r in crash_rounds.items():
            if not 0 <= p < n:
                raise ValueError(f"crashed process {p} outside 0..{n - 1}")
            if r <= 0:
                raise ValueError(f"crash round must be >= 1, got {r} for process {p}")
        self.crash_rounds = dict(crash_rounds)

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        return frozenset(
            q
            for q in range(self.n)
            if self.crash_rounds.get(q) is None or round < self.crash_rounds[q]
        )


class RandomOmissionOracle(HOOracleBase):
    """Dynamic transient (DT) faults: each transmission is lost independently.

    Every (sender, receiver, round) transmission is dropped with probability
    *loss_probability*; the receiver always hears of itself when
    *always_hear_self* is set.  A seeded :class:`random.Random` makes runs
    reproducible.  The oracle memoises its choices so that repeated queries
    for the same (round, process) are consistent.
    """

    def __init__(
        self,
        n: int,
        loss_probability: float,
        seed: int = 0,
        always_hear_self: bool = True,
    ) -> None:
        super().__init__(n)
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {loss_probability}")
        self.loss_probability = loss_probability
        self.always_hear_self = always_hear_self
        self._rng = random.Random(seed)
        self._memo: Dict[tuple[Round, ProcessId], HOSet] = {}

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        key = (round, process)
        if key not in self._memo:
            heard: Set[ProcessId] = set()
            for q in range(self.n):
                if q == process and self.always_hear_self:
                    heard.add(q)
                elif self._rng.random() >= self.loss_probability:
                    heard.add(q)
            self._memo[key] = frozenset(heard)
        return self._memo[key]


class PartitionOracle(HOOracleBase):
    """A network partition: processes only hear of their own block.

    *blocks* is a partition of (a subset of) Pi; processes not mentioned in
    any block form an implicit singleton block.  Optionally the partition
    *heals* from round *heal_round* on, after which communication is
    fault free.
    """

    def __init__(
        self,
        n: int,
        blocks: Sequence[Iterable[ProcessId]],
        heal_round: Optional[Round] = None,
    ) -> None:
        super().__init__(n)
        self._block_of: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        covered: Set[ProcessId] = set()
        for block in blocks:
            block_set = validate_process_subset(block, n)
            if block_set & covered:
                raise ValueError("partition blocks must be disjoint")
            covered |= block_set
            for p in block_set:
                self._block_of[p] = block_set
        for p in range(n):
            if p not in self._block_of:
                self._block_of[p] = frozenset({p})
        self.heal_round = heal_round

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        if self.heal_round is not None and round >= self.heal_round:
            return all_processes(self.n)
        return self._block_of[process]


class SilentRoundsOracle(HOOracleBase):
    """Rounds in *silent_rounds* deliver nothing at all; other rounds are fault free.

    ``P_otr`` explicitly allows rounds in which no messages are received;
    this oracle exercises that corner (used in tests of Theorem 1).
    """

    def __init__(self, n: int, silent_rounds: Iterable[Round]) -> None:
        super().__init__(n)
        self.silent_rounds = frozenset(silent_rounds)

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        if round in self.silent_rounds:
            return frozenset()
        return all_processes(self.n)


class ScriptedOracle(HOOracleBase):
    """An oracle driven by an explicit script ``{(round, process): HO set}``.

    Rounds/processes not covered by the script fall back to *default*
    (the full process set unless stated otherwise).  This is the work-horse
    of unit tests that need precise control over heard-of sets.
    """

    def __init__(
        self,
        n: int,
        script: Mapping[tuple[Round, ProcessId], Iterable[ProcessId]],
        default: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        super().__init__(n)
        self.script = {
            key: validate_process_subset(value, n) for key, value in script.items()
        }
        self.default = (
            all_processes(n) if default is None else validate_process_subset(default, n)
        )

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        return self.script.get((round, process), self.default)


class GoodPeriodOracle(HOOracleBase):
    """An oracle shaped like the paper's good/bad period alternation, at round granularity.

    Rounds before *good_from* are "bad": heard-of sets are drawn adversarially
    (every transmission dropped with probability *bad_loss_probability*, and
    the receiving process is partitioned away from a random half of the
    system with probability *bad_partition_probability*).  From round
    *good_from* to *good_to* (inclusive; ``None`` means forever) the rounds
    are perfect for the processes in *pi0*: every ``p in pi0`` has
    ``HO(p, r) = pi0``.  Processes outside pi0 keep experiencing bad rounds.

    This is the round-level analogue of a "pi0-down" good period and is used
    to construct collections satisfying ``P_su``/``P_2otr`` without running
    the full step-level simulator.
    """

    def __init__(
        self,
        n: int,
        pi0: Iterable[ProcessId],
        good_from: Round,
        good_to: Optional[Round] = None,
        bad_loss_probability: float = 0.6,
        bad_partition_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(n)
        self.pi0 = validate_process_subset(pi0, n)
        if good_from <= 0:
            raise ValueError(f"good_from must be >= 1, got {good_from}")
        self.good_from = good_from
        self.good_to = good_to
        self._bad = RandomOmissionOracle(n, bad_loss_probability, seed=seed)
        self._rng = random.Random(seed + 1)
        self.bad_partition_probability = bad_partition_probability
        self._memo: Dict[tuple[Round, ProcessId], HOSet] = {}

    def _in_good_period(self, round: Round) -> bool:
        if round < self.good_from:
            return False
        return self.good_to is None or round <= self.good_to

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        if self._in_good_period(round) and process in self.pi0:
            return self.pi0
        key = (round, process)
        if key not in self._memo:
            heard = set(self._bad.ho_set(round, process))
            if self._rng.random() < self.bad_partition_probability:
                half = set(self._rng.sample(range(self.n), self.n // 2))
                heard &= half | {process}
            self._memo[key] = frozenset(heard)
        return self._memo[key]


class KernelOnlyOracle(HOOracleBase):
    """Rounds satisfy ``P_k(pi0, ., .)`` but are *not* space uniform.

    Every process in pi0 hears of all of pi0 plus a random, per-process
    subset of the remaining processes.  This oracle deliberately violates
    ``P_su`` while satisfying ``P_k``, and is the canonical input of the
    Algorithm 4 translation (Theorem 8 benchmarks and property tests).
    """

    def __init__(self, n: int, pi0: Iterable[ProcessId], seed: int = 0) -> None:
        super().__init__(n)
        self.pi0 = validate_process_subset(pi0, n)
        self._rng = random.Random(seed)
        self._memo: Dict[tuple[Round, ProcessId], HOSet] = {}

    def ho_set(self, round: Round, process: ProcessId) -> HOSet:
        key = (round, process)
        if key not in self._memo:
            extra_pool = sorted(set(range(self.n)) - self.pi0)
            extras = {
                q for q in extra_pool if self._rng.random() < 0.5
            }
            if process in self.pi0:
                heard = set(self.pi0) | extras
            else:
                # Processes outside pi0 see an arbitrary subset.
                heard = {q for q in range(self.n) if self._rng.random() < 0.5}
                heard.add(process)
            self._memo[key] = frozenset(heard)
        return self._memo[key]


__all__ = [
    "HOOracleBase",
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
]
