"""Compatibility shim: the oracle zoo grew into :mod:`repro.adversaries`.

The heard-of oracles used to live here as a fixed list of classes.  They
are now a composable package -- base families, combinators
(intersect/union/sequence/window switching), dynamic/transient families and
a predicate-driven synthesizer -- under :mod:`repro.adversaries`.  This
module re-exports the original names so existing imports keep working.
"""

from ..adversaries import (
    FaultFreeOracle,
    GoodPeriodOracle,
    HOOracleBase,
    KernelOnlyOracle,
    MaskOracleBase,
    PartitionOracle,
    RandomOmissionOracle,
    ScriptedOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
)

__all__ = [
    "HOOracleBase",
    "MaskOracleBase",
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
]
