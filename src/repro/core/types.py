"""Basic types of the Heard-Of (HO) model.

The HO model (Section 3 of the paper) is a communication-closed round model:
in every round ``r`` each process ``p`` sends a message computed by its
sending function ``S_p^r`` and then makes a state transition with its
transition function ``T_p^r`` applied to the partial vector of messages it
received in that round.  The *heard-of set* ``HO(p, r)`` is the set of
processes (possibly including ``p`` itself) from which ``p`` received a
message in round ``r``.  Every fault -- a process crash, a send or receive
omission, a message loss on a link -- manifests at this level as a
*transmission fault*: the sender is simply absent from the heard-of set.

This module defines the identifiers, heard-of collections and run traces
shared by the algorithmic layer (:mod:`repro.algorithms`), the predicate
layer (:mod:`repro.core.predicates`) and the predicate-implementation layer
(:mod:`repro.predimpl`).

Heard-of sets are stored as integer bitmasks internally (one bit per
process, see :mod:`repro.rounds.bitmask`); ``frozenset`` is the
representation at API boundaries (:meth:`HOCollection.ho`,
:attr:`RoundRecord.ho_set`).  Hot paths use :meth:`HOCollection.record_mask`
and :meth:`HOCollection.ho_mask` and never build a set object per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..rounds.bitmask import (
    full_mask,
    iter_bits,
    mask_of,
    mask_to_frozenset,
)
from ..rounds.record import DecisionRecord, RoundRecord

#: A process identifier.  Processes are numbered ``0 .. n-1``.
ProcessId = int

#: A round number.  Rounds start at 1, matching the paper (``r > 0``).
Round = int

#: A heard-of set: the set of processes a given process heard of in a round.
HOSet = FrozenSet[ProcessId]

#: Backwards-compatible name: the unified per-round record schema of
#: :mod:`repro.rounds.record` replaced the old round-level-only record class.
ProcessRoundRecord = RoundRecord


def all_processes(n: int) -> FrozenSet[ProcessId]:
    """Return the full process set ``Pi = {0, ..., n-1}``."""
    if n <= 0:
        raise ValueError(f"number of processes must be positive, got {n}")
    return frozenset(range(n))


def validate_process_subset(subset: Iterable[ProcessId], n: int) -> FrozenSet[ProcessId]:
    """Validate that *subset* only contains processes in ``0 .. n-1``.

    Returns the subset as a frozenset.  Raises :class:`ValueError` otherwise.
    """
    result = frozenset(subset)
    if not result.issubset(all_processes(n)):
        bad = sorted(result - all_processes(n))
        raise ValueError(f"process ids {bad} are outside 0..{n - 1}")
    return result


@dataclass(frozen=True)
class RoundMessage:
    """A message tagged with the round it belongs to.

    The HO machine itself only needs the payload; the round tag is used by
    the predicate-implementation layer (Algorithms 2 and 3), whose messages
    on the wire carry explicit round numbers.
    """

    round: Round
    sender: ProcessId
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoundMessage(r={self.round}, from={self.sender}, {self.payload!r})"


class HOCollection:
    """A recorded collection of heard-of sets ``HO(p, r)``.

    Communication predicates (:mod:`repro.core.predicates`) are evaluated
    over instances of this class.  The collection is *finite*: it covers the
    rounds ``1 .. max_round`` actually executed by a run.  Predicates of the
    form "there exists a round such that ..." are interpreted over that
    finite window, which is the standard way of checking liveness-enabling
    predicates on finite executions.

    Heard-of sets are stored as bitmasks; :meth:`ho` converts to
    ``frozenset`` at the API boundary (memoised per distinct mask), while
    :meth:`ho_mask` / :meth:`record_mask` are the allocation-free hot path.
    """

    __slots__ = ("_n", "_full", "_masks", "_frozen_cache", "_max_round")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self._n = n
        self._full = full_mask(n)
        self._masks: Dict[Tuple[ProcessId, Round], int] = {}
        self._frozen_cache: Dict[int, HOSet] = {}
        self._max_round: Round = 0

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self._n

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        """The full process set Pi."""
        return all_processes(self._n)

    @property
    def full_mask(self) -> int:
        """The bitmask of the full process set Pi."""
        return self._full

    @property
    def max_round(self) -> Round:
        """The largest round for which at least one HO set was recorded."""
        return self._max_round

    def record(self, process: ProcessId, round: Round, ho_set: Iterable[ProcessId]) -> None:
        """Record ``HO(process, round)`` from an iterable of process ids.

        Re-recording the same (process, round) pair overwrites the previous
        value; this is convenient for simulators that finalise a round only
        when the transition function runs.
        """
        # Validate before masking: a negative id would otherwise surface as
        # an opaque "negative shift count" from mask_of.
        self.record_mask(process, round, mask_of(validate_process_subset(ho_set, self._n)))

    def record_mask(self, process: ProcessId, round: Round, mask: int) -> None:
        """Record ``HO(process, round)`` from a bitmask (the hot path)."""
        if not 0 <= process < self._n:
            raise ValueError(f"process {process} outside 0..{self._n - 1}")
        if round <= 0:
            raise ValueError(f"round numbers start at 1, got {round}")
        if mask & ~self._full:
            bad = sorted(iter_bits(mask & ~self._full))
            raise ValueError(f"process ids {bad} are outside 0..{self._n - 1}")
        self._masks[(process, round)] = mask
        if round > self._max_round:
            self._max_round = round

    def ho(self, process: ProcessId, round: Round) -> HOSet:
        """Return ``HO(process, round)``; the empty set if nothing recorded."""
        mask = self._masks.get((process, round), 0)
        cached = self._frozen_cache.get(mask)
        if cached is None:
            cached = mask_to_frozenset(mask)
            self._frozen_cache[mask] = cached
        return cached

    def ho_mask(self, process: ProcessId, round: Round) -> int:
        """Return ``HO(process, round)`` as a bitmask; 0 if nothing recorded."""
        return self._masks.get((process, round), 0)

    def has_record(self, process: ProcessId, round: Round) -> bool:
        """Whether an HO set was explicitly recorded for (process, round)."""
        return (process, round) in self._masks

    def rounds(self) -> range:
        """The range of rounds ``1 .. max_round`` covered by the collection."""
        return range(1, self._max_round + 1)

    def kernel_mask(self, round: Round, scope_mask: Optional[int] = None) -> int:
        """The kernel of *round* as a bitmask (scope defaults to Pi)."""
        scope = self._full if scope_mask is None else scope_mask
        if scope == 0:
            return 0
        result = self._full
        for p in iter_bits(scope):
            result &= self._masks.get((p, round), 0)
            if not result:
                break
        return result

    def kernel(self, round: Round, scope: Optional[Iterable[ProcessId]] = None) -> HOSet:
        """The kernel of *round*: processes heard by every process in *scope*.

        ``K(r) = intersection over p in scope of HO(p, r)``.  The default
        scope is the full process set Pi.
        """
        scope_mask = (
            None if scope is None else mask_of(validate_process_subset(scope, self._n))
        )
        return mask_to_frozenset(self.kernel_mask(round, scope_mask))

    def is_space_uniform(self, round: Round, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        """Whether all processes in *scope* have the same HO set in *round*."""
        members = (
            range(self._n)
            if scope is None
            else sorted(validate_process_subset(scope, self._n))
        )
        first: Optional[int] = None
        for p in members:
            mask = self._masks.get((p, round), 0)
            if first is None:
                first = mask
            elif mask != first:
                return False
        return True

    def items(self) -> Iterator[Tuple[ProcessId, Round, HOSet]]:
        """Iterate over recorded ``(process, round, HO set)`` triples."""
        for (p, r) in sorted(self._masks, key=lambda key: (key[1], key[0])):
            yield p, r, self.ho(p, r)

    def restrict(self, scope: Iterable[ProcessId]) -> "HOCollection":
        """Return a copy with HO sets intersected with *scope*.

        Useful for analysing the behaviour of a subsystem ``pi0``.
        """
        scope_mask = mask_of(validate_process_subset(scope, self._n))
        out = HOCollection(self._n)
        for (p, r), mask in self._masks.items():
            if (scope_mask >> p) & 1:
                out.record_mask(p, r, mask & scope_mask)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HOCollection):
            return NotImplemented
        return self._n == other._n and self._masks == other._masks

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HOCollection(n={self._n}, rounds=1..{self._max_round})"


@dataclass
class RunTrace:
    """The full trace of a round-level run.

    Holds the heard-of collection, per-round per-process records under the
    unified :class:`~repro.rounds.record.RoundRecord` schema, the decisions
    observed, and message accounting.  The analysis layer
    (:mod:`repro.analysis`) checks consensus properties and communication
    predicates against instances of this class.

    ``RunTrace`` implements the :class:`repro.rounds.engine.RoundTraceSink`
    protocol, so the shared :class:`~repro.rounds.engine.RoundEngine` writes
    into it directly.
    """

    n: int
    ho_collection: HOCollection
    records: List[RoundRecord] = field(default_factory=list)
    initial_values: Dict[ProcessId, Any] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0

    # ------------------------------------------------------------------ #
    # RoundTraceSink protocol (written to by the RoundEngine)
    # ------------------------------------------------------------------ #

    def record_round_result(self, record: RoundRecord) -> None:
        """Append one unified per-round record (and index its HO set)."""
        self.records.append(record)
        self.ho_collection.record_mask(record.process, record.round, record.ho_mask)

    def record_decision(self, process: ProcessId, value: Any, round: Round, time: float) -> None:
        """No-op: round-level decisions are derived from the records."""

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def decisions(self) -> Dict[ProcessId, Any]:
        """Map of process -> first decision value (processes without a decision are absent)."""
        out: Dict[ProcessId, Any] = {}
        for record in self.records:
            if record.decision is not None and record.process not in out:
                out[record.process] = record.decision
        return out

    def decision_rounds(self) -> Dict[ProcessId, Round]:
        """Map of process -> round in which it first decided."""
        out: Dict[ProcessId, Round] = {}
        for record in self.records:
            if record.decision is not None and record.process not in out:
                out[record.process] = record.round
        return out

    def decision_records(self) -> Dict[ProcessId, DecisionRecord]:
        """Map of process -> unified first-decision record (time = round number)."""
        out: Dict[ProcessId, DecisionRecord] = {}
        for record in self.records:
            if record.decision is not None and record.process not in out:
                time = record.time if record.time is not None else float(record.round)
                out[record.process] = DecisionRecord(
                    record.process, record.decision, record.round, time
                )
        return out

    def decision_values(self) -> Dict[ProcessId, Any]:
        """Map process -> decided value (the unified-trace spelling of :meth:`decisions`)."""
        return self.decisions()

    def decision_times(self) -> Dict[ProcessId, float]:
        """Map process -> time of first decision (round-level time is the round number)."""
        return {p: record.time for p, record in self.decision_records().items()}

    def all_decided(self, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        """Whether every process in *scope* (default: all) decided."""
        scope_set = all_processes(self.n) if scope is None else validate_process_subset(scope, self.n)
        decided = set(self.decisions())
        return scope_set.issubset(decided)

    def rounds_executed(self) -> Round:
        """The number of rounds recorded in the trace."""
        return self.ho_collection.max_round

    def records_for_round(self, round: Round) -> List[RoundRecord]:
        """All per-process records for a given round."""
        return [record for record in self.records if record.round == round]

    def records_for_process(self, process: ProcessId) -> List[RoundRecord]:
        """All per-round records for a given process, in round order."""
        return sorted(
            (record for record in self.records if record.process == process),
            key=lambda record: record.round,
        )


__all__ = [
    "ProcessId",
    "Round",
    "HOSet",
    "RoundMessage",
    "HOCollection",
    "ProcessRoundRecord",
    "RoundRecord",
    "DecisionRecord",
    "RunTrace",
    "all_processes",
    "validate_process_subset",
]
