"""Basic types of the Heard-Of (HO) model.

The HO model (Section 3 of the paper) is a communication-closed round model:
in every round ``r`` each process ``p`` sends a message computed by its
sending function ``S_p^r`` and then makes a state transition with its
transition function ``T_p^r`` applied to the partial vector of messages it
received in that round.  The *heard-of set* ``HO(p, r)`` is the set of
processes (possibly including ``p`` itself) from which ``p`` received a
message in round ``r``.  Every fault -- a process crash, a send or receive
omission, a message loss on a link -- manifests at this level as a
*transmission fault*: the sender is simply absent from the heard-of set.

This module defines the identifiers, heard-of collections and run traces
shared by the algorithmic layer (:mod:`repro.algorithms`), the predicate
layer (:mod:`repro.core.predicates`) and the predicate-implementation layer
(:mod:`repro.predimpl`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

#: A process identifier.  Processes are numbered ``0 .. n-1``.
ProcessId = int

#: A round number.  Rounds start at 1, matching the paper (``r > 0``).
Round = int

#: A heard-of set: the set of processes a given process heard of in a round.
HOSet = FrozenSet[ProcessId]


def all_processes(n: int) -> FrozenSet[ProcessId]:
    """Return the full process set ``Pi = {0, ..., n-1}``."""
    if n <= 0:
        raise ValueError(f"number of processes must be positive, got {n}")
    return frozenset(range(n))


def validate_process_subset(subset: Iterable[ProcessId], n: int) -> FrozenSet[ProcessId]:
    """Validate that *subset* only contains processes in ``0 .. n-1``.

    Returns the subset as a frozenset.  Raises :class:`ValueError` otherwise.
    """
    result = frozenset(subset)
    if not result.issubset(all_processes(n)):
        bad = sorted(result - all_processes(n))
        raise ValueError(f"process ids {bad} are outside 0..{n - 1}")
    return result


@dataclass(frozen=True)
class RoundMessage:
    """A message tagged with the round it belongs to.

    The HO machine itself only needs the payload; the round tag is used by
    the predicate-implementation layer (Algorithms 2 and 3), whose messages
    on the wire carry explicit round numbers.
    """

    round: Round
    sender: ProcessId
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoundMessage(r={self.round}, from={self.sender}, {self.payload!r})"


class HOCollection:
    """A recorded collection of heard-of sets ``HO(p, r)``.

    Communication predicates (:mod:`repro.core.predicates`) are evaluated
    over instances of this class.  The collection is *finite*: it covers the
    rounds ``1 .. max_round`` actually executed by a run.  Predicates of the
    form "there exists a round such that ..." are interpreted over that
    finite window, which is the standard way of checking liveness-enabling
    predicates on finite executions.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self._n = n
        self._sets: Dict[Tuple[ProcessId, Round], HOSet] = {}
        self._max_round: Round = 0

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self._n

    @property
    def processes(self) -> FrozenSet[ProcessId]:
        """The full process set Pi."""
        return all_processes(self._n)

    @property
    def max_round(self) -> Round:
        """The largest round for which at least one HO set was recorded."""
        return self._max_round

    def record(self, process: ProcessId, round: Round, ho_set: Iterable[ProcessId]) -> None:
        """Record ``HO(process, round)``.

        Re-recording the same (process, round) pair overwrites the previous
        value; this is convenient for simulators that finalise a round only
        when the transition function runs.
        """
        if not 0 <= process < self._n:
            raise ValueError(f"process {process} outside 0..{self._n - 1}")
        if round <= 0:
            raise ValueError(f"round numbers start at 1, got {round}")
        ho = validate_process_subset(ho_set, self._n)
        self._sets[(process, round)] = ho
        if round > self._max_round:
            self._max_round = round

    def ho(self, process: ProcessId, round: Round) -> HOSet:
        """Return ``HO(process, round)``; the empty set if nothing recorded."""
        return self._sets.get((process, round), frozenset())

    def has_record(self, process: ProcessId, round: Round) -> bool:
        """Whether an HO set was explicitly recorded for (process, round)."""
        return (process, round) in self._sets

    def rounds(self) -> range:
        """The range of rounds ``1 .. max_round`` covered by the collection."""
        return range(1, self._max_round + 1)

    def kernel(self, round: Round, scope: Optional[Iterable[ProcessId]] = None) -> HOSet:
        """The kernel of *round*: processes heard by every process in *scope*.

        ``K(r) = intersection over p in scope of HO(p, r)``.  The default
        scope is the full process set Pi.
        """
        members = list(self.processes if scope is None else validate_process_subset(scope, self._n))
        if not members:
            return frozenset()
        result = self.ho(members[0], round)
        for p in members[1:]:
            result = result & self.ho(p, round)
        return result

    def is_space_uniform(self, round: Round, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        """Whether all processes in *scope* have the same HO set in *round*."""
        members = list(self.processes if scope is None else validate_process_subset(scope, self._n))
        if not members:
            return True
        first = self.ho(members[0], round)
        return all(self.ho(p, round) == first for p in members[1:])

    def items(self) -> Iterator[Tuple[ProcessId, Round, HOSet]]:
        """Iterate over recorded ``(process, round, HO set)`` triples."""
        for (p, r), ho in sorted(self._sets.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            yield p, r, ho

    def restrict(self, scope: Iterable[ProcessId]) -> "HOCollection":
        """Return a copy with HO sets intersected with *scope*.

        Useful for analysing the behaviour of a subsystem ``pi0``.
        """
        scope_set = validate_process_subset(scope, self._n)
        out = HOCollection(self._n)
        for (p, r), ho in self._sets.items():
            if p in scope_set:
                out.record(p, r, ho & scope_set)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HOCollection):
            return NotImplemented
        return self._n == other._n and self._sets == other._sets

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HOCollection(n={self._n}, rounds=1..{self._max_round})"


@dataclass
class ProcessRoundRecord:
    """Everything recorded about one process in one round of a run."""

    process: ProcessId
    round: Round
    ho_set: HOSet
    state_after: Any
    decision: Optional[Any]
    sent_payload: Any = None


@dataclass
class RunTrace:
    """The full trace of an HO-machine run.

    Holds the heard-of collection, per-round per-process records, the
    decisions observed, and message accounting.  The analysis layer
    (:mod:`repro.analysis`) checks consensus properties and communication
    predicates against instances of this class.
    """

    n: int
    ho_collection: HOCollection
    records: List[ProcessRoundRecord] = field(default_factory=list)
    initial_values: Dict[ProcessId, Any] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0

    def decisions(self) -> Dict[ProcessId, Any]:
        """Map of process -> first decision value (processes without a decision are absent)."""
        out: Dict[ProcessId, Any] = {}
        for record in self.records:
            if record.decision is not None and record.process not in out:
                out[record.process] = record.decision
        return out

    def decision_rounds(self) -> Dict[ProcessId, Round]:
        """Map of process -> round in which it first decided."""
        out: Dict[ProcessId, Round] = {}
        for record in self.records:
            if record.decision is not None and record.process not in out:
                out[record.process] = record.round
        return out

    def all_decided(self, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        """Whether every process in *scope* (default: all) decided."""
        scope_set = all_processes(self.n) if scope is None else validate_process_subset(scope, self.n)
        decided = set(self.decisions())
        return scope_set.issubset(decided)

    def rounds_executed(self) -> Round:
        """The number of rounds recorded in the trace."""
        return self.ho_collection.max_round

    def records_for_round(self, round: Round) -> List[ProcessRoundRecord]:
        """All per-process records for a given round."""
        return [record for record in self.records if record.round == round]

    def records_for_process(self, process: ProcessId) -> List[ProcessRoundRecord]:
        """All per-round records for a given process, in round order."""
        return sorted(
            (record for record in self.records if record.process == process),
            key=lambda record: record.round,
        )


__all__ = [
    "ProcessId",
    "Round",
    "HOSet",
    "RoundMessage",
    "HOCollection",
    "ProcessRoundRecord",
    "RunTrace",
    "all_processes",
    "validate_process_subset",
]
