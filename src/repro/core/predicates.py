"""Compatibility shim: the predicates grew into :mod:`repro.predicates`.

The communication predicates used to live here as whole-collection checkers
only.  They are now a package with two dual forms -- the original
whole-collection checkers (:mod:`repro.predicates.static`) and streaming
:class:`~repro.predicates.monitors.PredicateMonitor` duals that evaluate
the same predicates online, one round of bitmask HO sets at a time, through
the round engine's observer hook.  This module re-exports the original
names so existing imports keep working (mirroring the
``core.adversary`` -> ``repro.adversaries`` precedent).
"""

from ..predicates.static import (
    And,
    CommunicationPredicate,
    ExistsPi0,
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    Not,
    Or,
    P2Otr,
    P11Otr,
    PKernel,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    PerRoundCardinality,
    TruePredicate,
    UniformRoundExists,
    exists_p2otr,
    exists_p11otr,
    find_pk_window,
    find_psu_window,
    otr_threshold,
    pk_holds,
    psu_holds,
)

__all__ = [
    "CommunicationPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PerRoundCardinality",
    "MajorityEveryRound",
    "NonEmptyKernelEveryRound",
    "UniformRoundExists",
    "POtr",
    "PRestrOtr",
    "PSpaceUniform",
    "PKernel",
    "P2Otr",
    "P11Otr",
    "ExistsPi0",
    "exists_p2otr",
    "exists_p11otr",
    "psu_holds",
    "pk_holds",
    "find_psu_window",
    "find_pk_window",
    "otr_threshold",
]
