"""The HO-algorithm interface: sending and transition functions per round.

An HO algorithm ``A = <S_p^r, T_p^r>`` (Section 3.1) consists of, for each
round ``r`` and process ``p``:

* a *sending function* ``S_p^r(s_p)`` that maps the state at the beginning of
  the round to the message sent to all processes, and
* a *transition function* ``T_p^r(mu, s_p)`` that maps the partial vector of
  received messages and the current state to the new state.

A problem is solved by a pair ``<A, P>`` where ``P`` is a communication
predicate over the heard-of sets.  This module defines the abstract base
class used by every consensus algorithm in :mod:`repro.algorithms`, by the
round executor :class:`repro.core.machine.HOMachine`, and by the
predicate-implementation layer in :mod:`repro.predimpl`, which drives the
same functions from a lower-level, step-based system model.
"""

from __future__ import annotations

import abc
from typing import Any, Generic, Mapping, Optional, TypeVar

from .types import ProcessId, Round

State = TypeVar("State")
Message = TypeVar("Message")


class HOAlgorithm(abc.ABC, Generic[State, Message]):
    """Abstract base class for algorithms expressed in the HO model.

    Subclasses must be *deterministic* and *side-effect free*: both functions
    must depend only on their arguments, because the same algorithm object is
    shared by all simulated processes.  State objects should be treated as
    immutable (the provided algorithms use frozen dataclasses); the
    transition function returns a new state.
    """

    #: Human-readable algorithm name (used in benchmark reports).
    name: str = "ho-algorithm"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """Number of processes the algorithm is configured for."""
        return self._n

    @abc.abstractmethod
    def initial_state(self, process: ProcessId, initial_value: Any) -> State:
        """Return the initial state of *process* with the given initial value."""

    @abc.abstractmethod
    def send(self, round: Round, process: ProcessId, state: State) -> Message:
        """The sending function ``S_p^r``: the message broadcast in *round*."""

    @abc.abstractmethod
    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: State,
        received: Mapping[ProcessId, Message],
    ) -> State:
        """The transition function ``T_p^r`` applied to the received partial vector.

        *received* maps each process in ``HO(p, r)`` to the message it sent in
        round *round*.  Processes outside the heard-of set are simply absent,
        they never map to ``None``.
        """

    @abc.abstractmethod
    def decision(self, state: State) -> Optional[Any]:
        """The decision recorded in *state*, or ``None`` if none was made yet."""

    def has_decided(self, state: State) -> bool:
        """Convenience wrapper around :meth:`decision`."""
        return self.decision(state) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(n={self._n})"


class ConsensusAlgorithm(HOAlgorithm[State, Message]):
    """Marker base class for HO algorithms that solve consensus.

    Consensus is specified by (Section 3.1):

    * *Integrity*: any decision value is the initial value of some process.
    * *Agreement*: no two processes decide differently.
    * *Termination*: all processes eventually decide (or, with restricted
      scope predicates such as ``P_restr_otr``, all processes in the scope
      ``Pi_0`` eventually decide).

    The class adds nothing to the interface; it exists so that analysis and
    benchmark code can assert it is dealing with a consensus algorithm.
    """


__all__ = ["HOAlgorithm", "ConsensusAlgorithm", "State", "Message"]
