"""Core of the Heard-Of (HO) model: rounds, algorithms, predicates, oracles.

The subpackage implements the paper's primary abstraction (Section 3):

* :mod:`repro.core.types` -- process ids, rounds, heard-of sets and traces;
* :mod:`repro.core.algorithm` -- the ``<S_p^r, T_p^r>`` algorithm interface;
* :mod:`repro.core.machine` -- a pure round-level executor (HO machine);
* :mod:`repro.core.predicates` -- communication predicates (Table 1 and
  Section 4.2);
* :mod:`repro.core.adversary` -- heard-of oracles playing the environment.
"""

from .algorithm import ConsensusAlgorithm, HOAlgorithm
from .machine import HOMachine, HOOracle, run_ho_algorithm
from .types import (
    DecisionRecord,
    HOCollection,
    HOSet,
    ProcessId,
    ProcessRoundRecord,
    Round,
    RoundMessage,
    RoundRecord,
    RunTrace,
    all_processes,
    validate_process_subset,
)

__all__ = [
    # types
    "ProcessId",
    "Round",
    "HOSet",
    "RoundMessage",
    "HOCollection",
    "ProcessRoundRecord",
    "RoundRecord",
    "DecisionRecord",
    "RunTrace",
    "all_processes",
    "validate_process_subset",
    # algorithm interface
    "HOAlgorithm",
    "ConsensusAlgorithm",
    # machine
    "HOMachine",
    "HOOracle",
    "run_ho_algorithm",
    # predicates
    "CommunicationPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PerRoundCardinality",
    "MajorityEveryRound",
    "NonEmptyKernelEveryRound",
    "UniformRoundExists",
    "POtr",
    "PRestrOtr",
    "PSpaceUniform",
    "PKernel",
    "P2Otr",
    "P11Otr",
    "ExistsPi0",
    "exists_p2otr",
    "exists_p11otr",
    "psu_holds",
    "pk_holds",
    "find_psu_window",
    "find_pk_window",
    "otr_threshold",
    # oracles (lazily re-exported from repro.adversaries, see __getattr__)
    "HOOracleBase",
    "MaskOracleBase",
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
]

#: Oracle names re-exported from :mod:`repro.adversaries`.  The re-export is
#: lazy (PEP 562) so that ``repro.core`` never imports the adversary package
#: at module-import time -- the adversaries themselves build on
#: ``repro.core.types``, and an eager import here would close a cycle.
_ADVERSARY_EXPORTS = frozenset(
    {
        "HOOracleBase",
        "MaskOracleBase",
        "FaultFreeOracle",
        "StaticCrashOracle",
        "RandomOmissionOracle",
        "PartitionOracle",
        "SilentRoundsOracle",
        "ScriptedOracle",
        "GoodPeriodOracle",
        "KernelOnlyOracle",
    }
)

#: Predicate names re-exported from :mod:`repro.predicates` (via the
#: ``core.predicates`` shim).  Lazy for the same reason as the adversaries:
#: the predicate package builds on ``repro.core.types``, so an eager import
#: here would close a cycle when an import starts at ``repro.predicates``.
_PREDICATE_EXPORTS = frozenset(
    {
        "CommunicationPredicate",
        "And",
        "Or",
        "Not",
        "TruePredicate",
        "PerRoundCardinality",
        "MajorityEveryRound",
        "NonEmptyKernelEveryRound",
        "UniformRoundExists",
        "POtr",
        "PRestrOtr",
        "PSpaceUniform",
        "PKernel",
        "P2Otr",
        "P11Otr",
        "ExistsPi0",
        "exists_p2otr",
        "exists_p11otr",
        "psu_holds",
        "pk_holds",
        "find_psu_window",
        "find_pk_window",
        "otr_threshold",
    }
)


def __getattr__(name: str):
    if name in _ADVERSARY_EXPORTS:
        from .. import adversaries

        return getattr(adversaries, name)
    if name in _PREDICATE_EXPORTS:
        from . import predicates

        return getattr(predicates, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
