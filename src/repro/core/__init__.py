"""Core of the Heard-Of (HO) model: rounds, algorithms, predicates, oracles.

The subpackage implements the paper's primary abstraction (Section 3):

* :mod:`repro.core.types` -- process ids, rounds, heard-of sets and traces;
* :mod:`repro.core.algorithm` -- the ``<S_p^r, T_p^r>`` algorithm interface;
* :mod:`repro.core.machine` -- a pure round-level executor (HO machine);
* :mod:`repro.core.predicates` -- communication predicates (Table 1 and
  Section 4.2);
* :mod:`repro.core.adversary` -- heard-of oracles playing the environment.
"""

from .algorithm import ConsensusAlgorithm, HOAlgorithm
from .adversary import (
    FaultFreeOracle,
    GoodPeriodOracle,
    HOOracleBase,
    KernelOnlyOracle,
    PartitionOracle,
    RandomOmissionOracle,
    ScriptedOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
)
from .machine import HOMachine, HOOracle, run_ho_algorithm
from .predicates import (
    And,
    CommunicationPredicate,
    ExistsPi0,
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    Not,
    Or,
    P11Otr,
    P2Otr,
    PKernel,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    PerRoundCardinality,
    TruePredicate,
    UniformRoundExists,
    exists_p11otr,
    exists_p2otr,
    find_pk_window,
    find_psu_window,
    otr_threshold,
    pk_holds,
    psu_holds,
)
from .types import (
    HOCollection,
    HOSet,
    ProcessId,
    ProcessRoundRecord,
    Round,
    RoundMessage,
    RunTrace,
    all_processes,
    validate_process_subset,
)

__all__ = [
    # types
    "ProcessId",
    "Round",
    "HOSet",
    "RoundMessage",
    "HOCollection",
    "ProcessRoundRecord",
    "RunTrace",
    "all_processes",
    "validate_process_subset",
    # algorithm interface
    "HOAlgorithm",
    "ConsensusAlgorithm",
    # machine
    "HOMachine",
    "HOOracle",
    "run_ho_algorithm",
    # predicates
    "CommunicationPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PerRoundCardinality",
    "MajorityEveryRound",
    "NonEmptyKernelEveryRound",
    "UniformRoundExists",
    "POtr",
    "PRestrOtr",
    "PSpaceUniform",
    "PKernel",
    "P2Otr",
    "P11Otr",
    "ExistsPi0",
    "exists_p2otr",
    "exists_p11otr",
    "psu_holds",
    "pk_holds",
    "find_psu_window",
    "find_pk_window",
    "otr_threshold",
    # oracles
    "HOOracleBase",
    "FaultFreeOracle",
    "StaticCrashOracle",
    "RandomOmissionOracle",
    "PartitionOracle",
    "SilentRoundsOracle",
    "ScriptedOracle",
    "GoodPeriodOracle",
    "KernelOnlyOracle",
]
