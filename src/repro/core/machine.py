"""The HO machine: a pure round-level executor for HO algorithms.

The machine realises the coarse-grained round structure of the HO model: in
each round every process first computes its message with the sending
function, then the *environment* -- represented by a heard-of oracle --
decides, for every process, from which senders the message is actually
received, and finally every process applies its transition function.

The loop itself lives in the shared :class:`repro.rounds.RoundEngine`; the
machine is a thin round-level policy over it, pairing the engine with an
:class:`~repro.rounds.engine.OracleTransport` (the heard-of oracle plays the
adversary/environment) and a :class:`~repro.core.types.RunTrace`.  The
oracles shipped with the library live in :mod:`repro.adversaries`; they
range from the fault-free oracle to oracles that are built to satisfy (or to
violate) a given communication predicate.

This executor is deliberately independent of the step-level system model of
Section 4 (see :mod:`repro.sysmodel` and :mod:`repro.predimpl`), which
drives the *same* engine through a step-backed transport: it is the right
tool for studying the algorithmic layer in isolation, for checking
Theorems 1, 2 and 8, and for property-based testing of safety invariants.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence

from ..rounds.engine import OracleTransport, RoundEngine
from .algorithm import HOAlgorithm
from .types import (
    HOCollection,
    ProcessId,
    Round,
    RunTrace,
    all_processes,
)

#: A heard-of oracle: given the round and the receiving process, return the
#: set of processes it hears of in that round.  The machine intersects the
#: returned set with Pi, so oracles may be sloppy about bounds.  Oracles may
#: additionally implement ``ho_mask(round, process) -> int`` (all the oracles
#: of :mod:`repro.adversaries` do) to skip set construction entirely.
HOOracle = Callable[[Round, ProcessId], Iterable[ProcessId]]


class HOMachine:
    """Round-by-round executor of an :class:`~repro.core.algorithm.HOAlgorithm`.

    Parameters
    ----------
    algorithm:
        The HO algorithm to execute.
    oracle:
        The heard-of oracle controlling ``HO(p, r)`` for every process and
        round.  See :mod:`repro.adversaries` for ready-made oracles and
        combinators.
    initial_values:
        The initial value of each process, either a sequence indexed by
        process id or a mapping.
    view:
        The received-mapping representation handed to transition functions:
        ``"dict"`` (default) materialises a plain dict, ``"mask"`` hands out
        a zero-copy bitmask-backed view (faster for large ``n``).
    observers:
        :class:`~repro.rounds.engine.RoundObserver` hooks fed every round
        record as it is produced (e.g. a streaming predicate
        :class:`~repro.predicates.monitors.MonitorBank`).  An observer whose
        ``stop_requested`` turns true stops :meth:`run_until_decision`
        early, between rounds.
    """

    def __init__(
        self,
        algorithm: HOAlgorithm,
        oracle: HOOracle,
        initial_values: Sequence[Any] | Mapping[ProcessId, Any],
        view: str = "dict",
        observers: Sequence[Any] = (),
    ) -> None:
        self._algorithm = algorithm
        self._n = algorithm.n
        self._values: Dict[ProcessId, Any] = self._normalise_values(initial_values)
        self._states: Dict[ProcessId, Any] = {
            p: algorithm.initial_state(p, self._values[p]) for p in range(self._n)
        }
        self._round: Round = 0
        self._trace = RunTrace(n=self._n, ho_collection=HOCollection(self._n))
        self._trace.initial_values = dict(self._values)
        self._engine = RoundEngine(
            algorithm,
            OracleTransport(oracle, self._n, view=view),
            self._trace,
            observers=observers,
        )

    def _normalise_values(
        self, initial_values: Sequence[Any] | Mapping[ProcessId, Any]
    ) -> Dict[ProcessId, Any]:
        if isinstance(initial_values, Mapping):
            values = dict(initial_values)
        else:
            values = dict(enumerate(initial_values))
        missing = set(range(self._n)) - set(values)
        if missing:
            raise ValueError(f"missing initial values for processes {sorted(missing)}")
        extra = set(values) - set(range(self._n))
        if extra:
            raise ValueError(f"initial values given for unknown processes {sorted(extra)}")
        return values

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    @property
    def algorithm(self) -> HOAlgorithm:
        """The algorithm being executed."""
        return self._algorithm

    @property
    def engine(self) -> RoundEngine:
        """The shared round engine executing this machine's rounds."""
        return self._engine

    @property
    def current_round(self) -> Round:
        """The last round that was fully executed (0 before the first round)."""
        return self._round

    @property
    def trace(self) -> RunTrace:
        """The trace accumulated so far."""
        return self._trace

    def state(self, process: ProcessId) -> Any:
        """The current state of *process*."""
        return self._states[process]

    def decisions(self) -> Dict[ProcessId, Any]:
        """Current decisions, per process (absent when not yet decided)."""
        out: Dict[ProcessId, Any] = {}
        for p in range(self._n):
            decision = self._algorithm.decision(self._states[p])
            if decision is not None:
                out[p] = decision
        return out

    def all_decided(self, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        """Whether every process in *scope* (default: all) has decided."""
        scope_set = all_processes(self._n) if scope is None else frozenset(scope)
        return scope_set.issubset(self.decisions())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run_round(self) -> Round:
        """Execute one full round and return its round number."""
        self._round += 1
        self._engine.execute_round(self._round, self._states)
        return self._round

    def run(self, rounds: int) -> RunTrace:
        """Execute *rounds* additional rounds and return the trace."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.run_round()
        return self._trace

    def run_until_decision(
        self,
        max_rounds: int,
        scope: Optional[Iterable[ProcessId]] = None,
    ) -> RunTrace:
        """Run until every process in *scope* decided, or *max_rounds* rounds elapsed.

        An attached observer requesting an early stop (e.g. a monitor
        bank's "predicate held for k rounds" policy) also ends the run,
        between rounds.
        """
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        scope_set = all_processes(self._n) if scope is None else frozenset(scope)
        while (
            self._round < max_rounds
            and not self.all_decided(scope_set)
            and not self._engine.stop_requested
        ):
            self.run_round()
        return self._trace


def run_ho_algorithm(
    algorithm: HOAlgorithm,
    oracle: HOOracle,
    initial_values: Sequence[Any] | Mapping[ProcessId, Any],
    max_rounds: int = 100,
    scope: Optional[Iterable[ProcessId]] = None,
) -> RunTrace:
    """Convenience helper: build an :class:`HOMachine` and run it until decision.

    This is the one-call entry point used by the quickstart example.
    """
    machine = HOMachine(algorithm, oracle, initial_values)
    return machine.run_until_decision(max_rounds=max_rounds, scope=scope)


__all__ = ["HOMachine", "HOOracle", "run_ho_algorithm"]
