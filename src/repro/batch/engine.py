"""The lockstep-replica batch engine: R seeded runs, one vectorised round loop.

Where the scalar :class:`~repro.rounds.engine.RoundEngine` executes one run's
round for n processes, the :class:`BatchEngine` executes one round for
``R x n`` (replica, process) pairs at once: the oracle hands over an
``(R, n, ceil(n/64))`` uint64 mask array, the engine unpacks it into the
boolean heard-matrix, the algorithm's batch kernel
(:mod:`repro.algorithms.batched`) advances every replica's ``(R, n)`` state
arrays, and the batched predicate monitors (:mod:`repro.predicates.batch`)
consume the same mask words.  Per-replica *active* flags reproduce the
scalar run loop exactly: a replica whose decide-scope has decided (or whose
stop policy fired) freezes -- its oracle stops being queried, its monitors
stop observing, its message counters stop -- while its siblings run on.

The engine is numpy-only by construction; the decision of *whether* to run
it (or to fall back to the scalar reference loop) belongs to
:class:`repro.batch.backends.BatchBackend`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .._optional import require_numpy
from ..algorithms.batched import BatchKernel
from ..rounds.backend import (
    ReplicaBatch,
    ReplicaFingerprint,
    ReplicaOutcome,
    finish_fingerprint,
)
from ..rounds.bitmask import WORD_BITS, iter_bits, word_count
from .arrays import int_masks_from_words, popcount_words, unpack_words


class BatchEngine:
    """Run a :class:`~repro.rounds.backend.ReplicaBatch` in vectorised lockstep.

    *kernel* holds the replicas' algorithm state; *oracle* is a
    :class:`~repro.adversaries.batch.BatchOracle`; *monitors* an optional
    :class:`~repro.predicates.batch.BatchMonitorBank`.  ``run`` returns one
    :class:`~repro.rounds.backend.ReplicaOutcome` per replica, in task
    order, bit-identical to the scalar reference backend per seed.
    """

    def __init__(
        self,
        batch: ReplicaBatch,
        kernel: BatchKernel,
        oracle: Any,
        monitors: Optional[Any] = None,
    ) -> None:
        np = require_numpy()
        self.np = np
        self.batch = batch
        self.kernel = kernel
        self.oracle = oracle
        self.monitors = monitors
        self.n = batch.n
        self.replicas = batch.replicas
        if kernel.n != self.n or kernel.replicas != self.replicas:
            raise ValueError("kernel shape does not match the batch")
        if oracle.n != self.n or oracle.replicas != self.replicas:
            raise ValueError("oracle shape does not match the batch")

    def run(self) -> List[ReplicaOutcome]:
        np = self.np
        batch = self.batch
        kernel = self.kernel
        oracle = self.oracle
        monitors = self.monitors
        n = self.n
        replicas = self.replicas
        scope = list(iter_bits(batch.effective_scope_mask))

        rounds_executed = np.zeros(replicas, dtype=np.int64)
        messages_sent = np.zeros(replicas, dtype=np.int64)
        messages_delivered = np.zeros(replicas, dtype=np.int64)
        fingerprints: Optional[List[ReplicaFingerprint]] = None
        if batch.fingerprints:
            fingerprints = [ReplicaFingerprint() for _ in range(replicas)]

        # Round-loop scratch: the unpacked heard-matrix and its bit-expansion
        # intermediate are rewritten in place every round.
        heard_buffer = np.empty((replicas, n, n), dtype=bool)
        bits_buffer = np.empty(
            (replicas, n, word_count(n), WORD_BITS), dtype=np.uint64
        )

        round = 0
        while round < batch.max_rounds:
            # The same between-round poll as the scalar loop: a replica that
            # has decided its scope (or whose stop policy fired) does not
            # start the next round.
            active = np.ones(replicas, dtype=bool)
            if monitors is not None:
                active &= ~monitors.stop_array
            if not batch.run_full_horizon:
                active &= ~kernel.scope_all_decided(scope)
            if not active.any():
                break
            round += 1
            words = oracle.round_masks(round, active)
            heard = unpack_words(words, n, out=heard_buffer, bits=bits_buffer)
            decided_before = kernel.decided() if fingerprints is not None else None
            kernel.step(round, heard, active)
            rounds_executed[active] = round
            messages_sent[active] += n * n
            popc = popcount_words(words)
            delivered = popc.sum(axis=1)
            messages_delivered[active] += delivered[active]
            if monitors is not None:
                monitors.observe_round(round, words, heard, popc, active)
            if fingerprints is not None:
                for r in range(replicas):
                    if not active[r]:
                        continue
                    fingerprints[r].observe_round(
                        round,
                        int_masks_from_words(words[r]),
                        kernel.estimate_reprs(r),
                        kernel.newly_decided(r, decided_before),
                    )

        outcomes: List[ReplicaOutcome] = []
        for r, task in enumerate(batch.tasks):
            decisions, decision_rounds = kernel.decisions_of(r)
            reports = monitors.reports_json_of(r) if monitors is not None else None
            stopped = bool(monitors.stop_array[r]) if monitors is not None else False
            fingerprint = fingerprints[r] if fingerprints is not None else None
            outcomes.append(
                ReplicaOutcome(
                    seed=task.seed,
                    decisions=decisions,
                    decision_rounds=decision_rounds,
                    rounds_executed=int(rounds_executed[r]),
                    messages_sent=int(messages_sent[r]),
                    messages_delivered=int(messages_delivered[r]),
                    stopped_early=stopped,
                    predicate_reports=reports,
                    fingerprint=finish_fingerprint(
                        fingerprint,
                        decisions,
                        decision_rounds,
                        int(rounds_executed[r]),
                        int(messages_sent[r]),
                        int(messages_delivered[r]),
                    ),
                )
            )
        return outcomes


__all__ = ["BatchEngine"]
