"""The ``batch`` execution backend: vectorise when possible, fall back when not.

:class:`BatchBackend` is the decision layer in front of the
:class:`~repro.batch.engine.BatchEngine`.  For every
:class:`~repro.rounds.backend.ReplicaBatch` it checks whether vectorisation
can engage:

1. numpy is available (the ``fast`` extra; honours ``REPRO_DISABLE_NUMPY``);
2. every replica runs the same algorithm class and a batched kernel is
   registered for it (:func:`repro.algorithms.batched.batch_kernel_for`);
3. every replica's initial values are encodable (totally ordered, hashable);
4. monitoring, if requested, came with a declarative
   :class:`~repro.rounds.backend.MonitorSpec` (an opaque observer factory
   cannot be vectorised).

When any check fails the batch runs on the scalar reference backend
instead -- same outcomes, replica by replica, just without the array hot
path.  ``last_fallback_reason`` records why, for tests and for the
benchmark harness to report.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional

from .._optional import have_numpy
from ..rounds.backend import (
    ReplicaBatch,
    ReplicaOutcome,
    ScalarBackend,
    register_backend,
)
from ..rounds.fallback import FallbackReason
from .engine import BatchEngine


class BatchBackend:
    """Vectorised lockstep execution of replica batches, with a scalar safety net."""

    name = "batch"

    def __init__(self, force_fallback: bool = False) -> None:
        self.force_fallback = force_fallback
        self._scalar = ScalarBackend()
        #: why the last ``run`` fell back to the scalar loop (None = it
        #: vectorised).  Diagnostic only; outcomes are identical either way.
        self.last_fallback_reason: Optional[str] = None

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        reason = self._fallback_reason(batch)
        engine: Optional[BatchEngine] = None
        if reason is None:
            engine, reason = self._try_build_engine(batch)
        self.last_fallback_reason = reason
        if engine is None:
            return self._scalar.run(self._with_scalar_monitors(batch))
        return engine.run()

    @staticmethod
    def _with_scalar_monitors(batch: ReplicaBatch) -> ReplicaBatch:
        """Derive a scalar monitor factory from the spec before falling back.

        A caller may attach only the declarative :class:`MonitorSpec`
        (vectorised monitoring needs nothing else); the scalar loop monitors
        through observers, so the fallback must synthesise the equivalent
        :class:`~repro.predicates.MonitorBank` factory -- otherwise the two
        paths would diverge in reports *and* in early-stop timing, breaking
        the identical-results contract.
        """
        if batch.monitor_spec is None or batch.monitor_factory is not None:
            return batch
        from ..predicates import build_monitor_bank
        from ..rounds.bitmask import iter_bits

        spec = batch.monitor_spec
        pi0 = None if spec.pi0_mask is None else frozenset(iter_bits(spec.pi0_mask))
        factory = lambda: build_monitor_bank(  # noqa: E731
            batch.n, spec.predicates, pi0=pi0, stop_after_held=spec.stop_after_held
        )
        return replace(batch, monitor_factory=factory)

    # ------------------------------------------------------------------ #
    # the vectorisation decision
    # ------------------------------------------------------------------ #

    def _fallback_reason(self, batch: ReplicaBatch) -> Optional[str]:
        if self.force_fallback:
            return FallbackReason.FORCED.render()
        if not have_numpy():
            return FallbackReason.NO_NUMPY.render()
        from ..algorithms.batched import batch_kernel_for

        if any(task.algorithm.n != batch.n for task in batch.tasks):
            # The scalar loop raises for mis-sized algorithms; route the
            # batch there so both backends reject the same input identically.
            return FallbackReason.SIZE_MISMATCH.render()
        algorithm_classes = {type(task.algorithm) for task in batch.tasks}
        if len(algorithm_classes) != 1:
            return FallbackReason.MIXED_ALGORITHMS.render(
                classes=sorted(c.__name__ for c in algorithm_classes)
            )
        if batch_kernel_for(batch.tasks[0].algorithm) is None:
            return FallbackReason.NO_BATCH_KERNEL.render(
                algorithm=batch.tasks[0].algorithm.__class__.__name__
            )
        if batch.monitor_factory is not None and batch.monitor_spec is None:
            return FallbackReason.OPAQUE_MONITOR.render()
        return None

    def _try_build_engine(
        self, batch: ReplicaBatch
    ) -> "tuple[Optional[BatchEngine], Optional[str]]":
        from ..adversaries.batch import vectorize_oracles
        from ..algorithms.batched import BatchUnsupported, batch_kernel_for

        kernel_class = batch_kernel_for(batch.tasks[0].algorithm)
        assert kernel_class is not None
        try:
            kernel = kernel_class.from_batch(batch)
        except BatchUnsupported as exc:
            # Unencodable values are only detectable by trying; degrade.
            return None, str(exc)
        oracle = vectorize_oracles(
            [task.oracle for task in batch.tasks], batch.replicas
        )
        monitors: Optional[Any] = None
        if batch.monitor_spec is not None:
            from ..predicates.batch import BatchMonitorBank

            spec = batch.monitor_spec
            monitors = BatchMonitorBank(
                batch.n,
                batch.replicas,
                spec.predicates,
                pi0_mask=spec.pi0_mask,
                stop_after_held=spec.stop_after_held,
            )
        return BatchEngine(batch, kernel, oracle, monitors), None


register_backend(BatchBackend())


__all__ = ["BatchBackend"]
