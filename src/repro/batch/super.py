"""The cross-cell super-batch engine: the whole grid as one lockstep unit.

:class:`~repro.batch.backends.BatchBackend` vectorises the R replicas of
*one* sweep cell; the grid axis -- (scenario, fault model, n, seed-count)
cells -- remains a Python loop, and small-n cells leave most of the array
width idle.  :class:`SuperBatchBackend` packs B heterogeneous cells into a
single padded row space instead:

* estimates live in one ``(sum(R_b), n_max)`` code array (the batch
  kernels' mixed-``row_n`` mode: columns above a row's own n are padding
  that never passes an update gate);
* heard-of sets live in one ``(sum(R_b), n_max, ceil(n_max/64))`` uint64
  word buffer, each cell's oracle scattering its ``(R_b, n_b, W_b)`` block
  into the top-left corner of its rows;
* one lockstep loop steps *all* rows each round, retiring rows as their
  replicas decide (or hit their horizon) and compacting the kernel when
  occupancy drops below :data:`COMPACT_THRESHOLD`.

Heterogeneous horizons, scopes and fault models coexist because every
per-row quantity -- n, horizon, scope mask, full-horizon flag -- is a row
vector, and the counter-based oracle duals (:mod:`repro.adversaries.
counter_batch`) need no per-replica query loop.  Cells the super engine
cannot take whole-grid (monitored or fingerprinted runs, unencodable
values, no kernel) fall back to the per-cell batch backend -- the same
outcomes, cell by cell; ``last_fallback_reasons`` records which and why.

The contract is unchanged: per seed, outcomes are bit-identical to the
scalar reference backend (and hence to the per-cell batch backend).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .._optional import have_numpy, require_numpy
from ..rounds.backend import (
    ReplicaBatch,
    ReplicaOutcome,
    register_backend,
)
from ..rounds.bitmask import WORD_BITS, iter_bits, word_count
from ..rounds.fallback import FallbackReason
from .arrays import popcount_words, unpack_words
from .backends import BatchBackend

#: Compact the kernel when live rows drop below this fraction of its rows.
COMPACT_THRESHOLD = 0.5
#: ... but only when at least this many rows would be dropped (anti-thrash).
COMPACT_MIN_DROP = 32


class SuperBatchBackend:
    """Cross-cell lockstep execution: many ReplicaBatches, one round loop."""

    name = "super"

    def __init__(self, force_fallback: bool = False) -> None:
        self.force_fallback = force_fallback
        self._cell_backend = BatchBackend()
        #: why the last single-batch ``run`` left the super path (None = it
        #: super-batched).  Mirrors ``BatchBackend.last_fallback_reason``.
        self.last_fallback_reason: Optional[str] = None
        #: per input index of the last ``run_batches``: the fallback reason
        #: of every cell that took the per-cell batch path.
        self.last_fallback_reasons: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        return self.run_batches([batch])[0]

    def run_batches(
        self, batches: Sequence[ReplicaBatch]
    ) -> List[List[ReplicaOutcome]]:
        """Execute every batch, super-batching all eligible cells together.

        Returns one outcome list per input batch, in input order; each list
        is in task order, exactly as the per-cell backends return it.
        """
        self.last_fallback_reasons = {}
        results: List[Optional[List[ReplicaOutcome]]] = [None] * len(batches)
        groups: Dict[Any, List[int]] = {}
        for i, batch in enumerate(batches):
            reason, kernel_class = self._eligibility(batch)
            if reason is not None:
                self.last_fallback_reasons[i] = reason
                results[i] = self._cell_backend.run(batch)
            else:
                groups.setdefault(kernel_class, []).append(i)
        for kernel_class, indices in groups.items():
            outcomes = _SuperBatchEngine(
                kernel_class, [batches[i] for i in indices]
            ).run()
            for i, cell_outcomes in zip(indices, outcomes):
                results[i] = cell_outcomes
        self.last_fallback_reason = self.last_fallback_reasons.get(0) if batches else None
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # the super-batch eligibility decision
    # ------------------------------------------------------------------ #

    def _eligibility(self, batch: ReplicaBatch) -> Tuple[Optional[str], Any]:
        if self.force_fallback:
            return FallbackReason.FORCED.render(), None
        if not have_numpy():
            return FallbackReason.NO_NUMPY.render(), None
        from ..algorithms.batched import (
            BatchUnsupported,
            batch_kernel_for,
            encode_values,
        )

        if any(task.algorithm.n != batch.n for task in batch.tasks):
            return FallbackReason.SIZE_MISMATCH.render(), None
        algorithm_classes = {type(task.algorithm) for task in batch.tasks}
        if len(algorithm_classes) != 1:
            return (
                FallbackReason.MIXED_ALGORITHMS.render(
                    classes=sorted(c.__name__ for c in algorithm_classes)
                ),
                None,
            )
        kernel_class = batch_kernel_for(batch.tasks[0].algorithm)
        if kernel_class is None:
            return (
                FallbackReason.NO_BATCH_KERNEL.render(
                    algorithm=batch.tasks[0].algorithm.__class__.__name__
                ),
                None,
            )
        if not kernel_class.super_batchable:
            # Kernels built from the full task context (e.g. the translation
            # kernel's embedded inner kernel) cannot be packed into a padded
            # mixed-n row space; they keep the per-cell batch path.
            return (
                FallbackReason.NOT_SUPER_BATCHABLE.render(kernel=kernel_class.__name__),
                None,
            )
        if batch.monitor_factory is not None or batch.monitor_spec is not None:
            # Monitors are per-cell constructs (their arrays are sized to
            # the cell); monitored cells keep the per-cell batch path.
            return FallbackReason.MONITORED_PER_CELL.render(), None
        if batch.fingerprints:
            return FallbackReason.FINGERPRINTED_PER_CELL.render(), None
        try:
            for task in batch.tasks:
                encode_values(list(task.initial_values))
        except BatchUnsupported as exc:
            return str(exc), None
        return None, kernel_class


class _SuperBatchEngine:
    """One padded row space for every replica of a group of cells."""

    def __init__(self, kernel_class: Any, batches: Sequence[ReplicaBatch]) -> None:
        np = require_numpy()
        self.np = np
        self.batches = list(batches)
        self.n_max = max(batch.n for batch in self.batches)
        self.w_max = word_count(self.n_max)

        from ..adversaries.batch import vectorize_oracles

        rows = sum(batch.replicas for batch in self.batches)
        self.rows = rows
        n_max = self.n_max
        padded_values: List[List[Any]] = []
        row_n: List[int] = []
        row_cell = np.empty(rows, dtype=np.int64)
        row_replica = np.empty(rows, dtype=np.int64)
        horizon = np.empty(rows, dtype=np.int64)
        full_horizon = np.empty(rows, dtype=bool)
        scope = np.zeros((rows, n_max), dtype=bool)
        self.oracles: List[Any] = []
        row = 0
        for ci, batch in enumerate(self.batches):
            scope_processes = list(iter_bits(batch.effective_scope_mask))
            for ri, task in enumerate(batch.tasks):
                values = list(task.initial_values)
                # Padding duplicates the first value: the code table is a
                # set, so the extra columns change nothing, and padded
                # receivers never hear anyone so they never act on it.
                values.extend(values[:1] * (n_max - batch.n))
                padded_values.append(values)
                row_n.append(batch.n)
                row_cell[row] = ci
                row_replica[row] = ri
                horizon[row] = batch.max_rounds
                full_horizon[row] = batch.run_full_horizon
                scope[row, scope_processes] = True
                row += 1
            self.oracles.append(
                vectorize_oracles([task.oracle for task in batch.tasks], batch.replicas)
            )
        self.kernel = kernel_class(n_max, padded_values, row_n=row_n)
        self.row_cell = row_cell
        self.row_replica = row_replica
        self.horizon = horizon
        self.full_horizon = full_horizon
        self.scope = scope
        self.row_sq = np.array(row_n, dtype=np.int64) ** 2

        # Full-length, original-indexed accounting; rows retire, these stay.
        self.rounds_executed = np.zeros(rows, dtype=np.int64)
        self.messages_sent = np.zeros(rows, dtype=np.int64)
        self.messages_delivered = np.zeros(rows, dtype=np.int64)
        self._decisions: List[Optional[Tuple[Dict[int, Any], Dict[int, int]]]] = [
            None
        ] * rows

    def run(self) -> List[List[ReplicaOutcome]]:
        np = self.np
        kernel = self.kernel
        n_max = self.n_max
        # orig_of maps the kernel's current row order to original row ids;
        # it shrinks in lockstep with every compaction.
        orig_of = np.arange(self.rows, dtype=np.int64)
        buffer = np.zeros((self.rows, n_max, self.w_max), dtype=np.uint64)
        # Round-loop scratch, reallocated with the buffer on compaction.
        heard_buffer = np.empty((self.rows, n_max, n_max), dtype=bool)
        bits_buffer = np.empty(
            (self.rows, n_max, self.w_max, WORD_BITS), dtype=np.uint64
        )

        round = 0
        while True:
            # A row runs the next round while it is inside its horizon and
            # (unless running the full horizon) its scope has not decided --
            # the same between-round poll as the per-cell loops.
            scope_live = self.scope[orig_of]
            scope_done = ((kernel.decision_code >= 0) | ~scope_live).all(axis=1)
            alive = (round < self.horizon[orig_of]) & (
                self.full_horizon[orig_of] | ~scope_done
            )
            live = int(alive.sum())
            if live == 0:
                self._retire(kernel, orig_of, np.ones(len(orig_of), dtype=bool))
                break
            dead = len(orig_of) - live
            if dead >= COMPACT_MIN_DROP and live < COMPACT_THRESHOLD * len(orig_of):
                self._retire(kernel, orig_of, ~alive)
                keep = np.nonzero(alive)[0]
                kernel.compact(keep)
                orig_of = orig_of[keep]
                buffer = np.zeros((live, n_max, self.w_max), dtype=np.uint64)
                heard_buffer = np.empty((live, n_max, n_max), dtype=bool)
                bits_buffer = np.empty(
                    (live, n_max, self.w_max, WORD_BITS), dtype=np.uint64
                )
                alive = np.ones(live, dtype=bool)

            round += 1
            cell_of_live = self.row_cell[orig_of]
            for ci, batch in enumerate(self.batches):
                positions = np.nonzero(cell_of_live == ci)[0]
                if positions.size == 0:
                    continue
                replica_idx = self.row_replica[orig_of[positions]]
                cell_active = np.zeros(batch.replicas, dtype=bool)
                cell_active[replica_idx] = alive[positions]
                words = self.oracles[ci].round_masks(round, cell_active)
                w_c = words.shape[-1]
                buffer[positions, : batch.n, :w_c] = words[replica_idx]

            heard = unpack_words(buffer, n_max, out=heard_buffer, bits=bits_buffer)
            kernel.step(round, heard, alive)
            updated = orig_of[alive]
            self.rounds_executed[updated] = round
            self.messages_sent[updated] += self.row_sq[updated]
            delivered = popcount_words(buffer).sum(axis=1)
            self.messages_delivered[updated] += delivered[alive]

        return self._collect()

    def _retire(self, kernel: Any, orig_of: Any, done: Any) -> None:
        """Read the decisions of rows leaving the kernel (pre-compaction)."""
        for pos in self.np.nonzero(done)[0]:
            self._decisions[int(orig_of[pos])] = kernel.decisions_of(int(pos))

    def _collect(self) -> List[List[ReplicaOutcome]]:
        outcomes: List[List[ReplicaOutcome]] = []
        row = 0
        for batch in self.batches:
            cell: List[ReplicaOutcome] = []
            for task in batch.tasks:
                decided = self._decisions[row]
                assert decided is not None
                decisions, decision_rounds = decided
                # Padded processes never decide, but clamp to the cell's own
                # process range for safety.
                decisions = {p: v for p, v in decisions.items() if p < batch.n}
                decision_rounds = {
                    p: r for p, r in decision_rounds.items() if p < batch.n
                }
                cell.append(
                    ReplicaOutcome(
                        seed=task.seed,
                        decisions=decisions,
                        decision_rounds=decision_rounds,
                        rounds_executed=int(self.rounds_executed[row]),
                        messages_sent=int(self.messages_sent[row]),
                        messages_delivered=int(self.messages_delivered[row]),
                        stopped_early=False,
                        predicate_reports=None,
                        fingerprint=None,
                    )
                )
                row += 1
            outcomes.append(cell)
        return outcomes


register_backend(SuperBatchBackend())


__all__ = ["SuperBatchBackend", "COMPACT_THRESHOLD", "COMPACT_MIN_DROP"]
