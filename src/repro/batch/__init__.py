"""repro.batch: the vectorised lockstep-replica execution backend.

Every experiment the paper cares about is "the same heard-of-oracle
scenario, R seeds, aggregate".  This package runs those R replicas as *one*
computation: per-process estimates live in ``(R, n)`` numpy arrays, heard-of
sets in ``(R, ceil(n/64))`` uint64 mask arrays (the word spill of
:mod:`repro.rounds.bitmask`), transitions advance through the batched
kernels of :mod:`repro.algorithms.batched`, environments through the
batched oracles of :mod:`repro.adversaries.batch`, and predicate monitors
through :mod:`repro.predicates.batch` -- all replica-vectorised, all
bit-identical per seed to the scalar :class:`~repro.rounds.engine.RoundEngine`
path.

numpy is optional (the ``fast`` extra): without it -- or whenever a batch
is not vectorisable (unknown algorithm, unencodable values, opaque
monitors) -- the :class:`~repro.batch.backends.BatchBackend` transparently
runs the scalar reference loop instead, so the import graph and the
behaviour stay identical either way.

The cross-cell :class:`~repro.batch.super.SuperBatchBackend` goes one axis
further: it packs B heterogeneous sweep cells -- different n, horizons,
fault models -- into one padded row space and steps the whole grid in a
single lockstep loop, retiring and compacting rows as replicas decide.

Importing this package registers the ``batch`` and ``super`` backends with
:mod:`repro.rounds.backend`; :func:`repro.rounds.backend.get_backend` does
that import lazily.
"""

from ..rounds.backend import (
    AUTO_BACKEND,
    ExecutionBackend,
    MonitorSpec,
    ReplicaBatch,
    ReplicaOutcome,
    ReplicaTask,
    ScalarBackend,
    backend_names,
    get_backend,
)
from .backends import BatchBackend
from .engine import BatchEngine
from .super import SuperBatchBackend

__all__ = [
    "AUTO_BACKEND",
    "ExecutionBackend",
    "MonitorSpec",
    "ReplicaBatch",
    "ReplicaOutcome",
    "ReplicaTask",
    "ScalarBackend",
    "BatchBackend",
    "BatchEngine",
    "SuperBatchBackend",
    "backend_names",
    "get_backend",
]
