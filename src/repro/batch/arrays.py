"""numpy array forms of the bitmask HO-set representation.

The batch engine stores heard-of sets as ``(R, n, ceil(n/64))`` uint64 mask
arrays -- replica-major, one row of words per receiving process -- with the
word-spill layout defined by :func:`repro.rounds.bitmask.mask_to_words`
(word ``w`` holds processes ``64*w .. 64*w + 63``).  This module owns the
conversions between that layout, Python int masks, and the dense boolean
``(R, n_receiver, n_sender)`` heard-matrices the transition kernels consume.

Everything here requires numpy; the callers (:mod:`repro.batch.backends`)
never reach these helpers on the pure-Python fallback path.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

from .._optional import require_numpy
from ..rounds.bitmask import WORD_BITS, mask_to_words, word_count, words_to_mask


def words_array_from_masks(masks: Sequence[int], n: int) -> Any:
    """Spill Python int masks into a ``(len(masks), word_count(n))`` uint64 array."""
    np = require_numpy()
    return np.array([mask_to_words(mask, n) for mask in masks], dtype=np.uint64)


def mask_from_words_row(row: Iterable[int]) -> int:
    """Reassemble one word row into a Python int mask (the boundary back out)."""
    return words_to_mask(int(word) for word in row)


def unpack_words(words: Any, n: int, out: Any = None, bits: Any = None) -> Any:
    """Unpack a ``(..., W)`` uint64 word array into a ``(..., n)`` bool array.

    Bit ``q`` of the mask becomes column ``q``; the padding bits above ``n``
    in the last word are dropped.  The round loops call this once per round,
    so both temporaries accept caller-owned buffers: *out* is the
    ``(..., n)`` bool result, *bits* the ``(..., W, 64)`` uint64
    intermediate.
    """
    np = require_numpy()
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    expanded = words[..., :, None]
    if bits is None:
        bits = (expanded >> shifts) & np.uint64(1)
    else:
        np.right_shift(expanded, shifts, out=bits)
        bits &= np.uint64(1)
    flat = bits.reshape(*words.shape[:-1], words.shape[-1] * WORD_BITS)
    trimmed = flat[..., :n]
    if out is None:
        return trimmed.astype(bool)
    np.copyto(out, trimmed, casting="unsafe")
    return out


def pack_bools(bits: Any, n: int) -> Any:
    """Pack a ``(..., n)`` bool array into its ``(..., W)`` uint64 word spill."""
    np = require_numpy()
    w = word_count(n)
    padded = np.zeros((*bits.shape[:-1], w * WORD_BITS), dtype=np.uint64)
    padded[..., :n] = bits
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    grouped = padded.reshape(*bits.shape[:-1], w, WORD_BITS) << shifts
    return np.bitwise_or.reduce(grouped, axis=-1)


def popcount_words(words: Any) -> Any:
    """Per-row popcounts of a ``(..., W)`` uint64 word array (int64 ``(...,)``).

    numpy >= 2 has a native ``bitwise_count``; older numpys get the
    SWAR popcount over the same words.
    """
    np = require_numpy()
    counter = getattr(np, "bitwise_count", None)
    if counter is not None:
        return counter(words).sum(axis=-1, dtype=np.int64)
    # SWAR popcount, 64-bit lanes (for numpy < 2).
    x = words.copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x -= (x >> np.uint64(1)) & m1
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    x = (x * h01) >> np.uint64(56)
    return x.sum(axis=-1, dtype=np.int64)


def int_masks_from_words(words: Any) -> List[int]:
    """Convert a ``(n, W)`` word array into a list of Python int masks."""
    return [mask_from_words_row(row) for row in words]


__all__ = [
    "words_array_from_masks",
    "mask_from_words_row",
    "unpack_words",
    "pack_bools",
    "popcount_words",
    "int_masks_from_words",
]
