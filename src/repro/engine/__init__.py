"""repro.engine: the shared discrete-event engine core.

The two simulators of the library -- the message-driven DES the
failure-detector baselines run on (:mod:`repro.des`) and the step-level
simulator of the paper's system model (:mod:`repro.sysmodel`) -- are thin
policy layers over this package:

* :class:`EventQueue` -- the (time, sequence)-ordered future-event list;
* :class:`Clock` / :class:`TraceRecorder` -- simulated time and the
  crash/recovery accounting protocol;
* :class:`SeededRng` -- named, mutually isolated random sub-streams for
  replayable channel / step / fault randomness;
* :class:`FaultSchedule` / :class:`CrashRecoveryInjector` -- the common
  crash/recovery fault-injection layer;
* :class:`EngineCore` -- the bundle of all of the above plus the run loop.
"""

from .core import EngineCore
from .counter import CounterStream, counter_hash, unit_of
from .faults import (
    CrashRecoveryInjector,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from .queue import EventQueue
from .rng import SeededRng, derive_seed
from .trace import Clock, TraceRecorder

__all__ = [
    "EngineCore",
    "EventQueue",
    "Clock",
    "TraceRecorder",
    "SeededRng",
    "derive_seed",
    "CounterStream",
    "counter_hash",
    "unit_of",
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "CrashRecoveryInjector",
]
