"""Counter-based random draws: hash ``(stream_key, counters...)``, no state.

The dynamic adversary families used to draw from sequential
``random.Random`` sub-streams, which forces a strict draw *order*: the
value of the k-th draw depends on the k-1 draws before it, so a vectorised
consumer must replay the exact scalar query sequence -- the reason those
families took the per-replica fallback loop in the batch backends.

A *counter-based* stream removes the order dependence: every draw is a pure
function of the stream key and a tuple of integer counters (round, process,
sender, a draw-type tag), computed with the splitmix64 finalizer.  Any
consumer -- the scalar oracle, a replica-vectorised batch dual, a prefix
re-query -- obtains bit-identical values, in any order, at any granularity.
The key is still derived with :func:`repro.engine.rng.derive_seed`, so the
``SeededRng`` contracts (named-stream isolation, ``replicate(i)`` ==
single run with ``seed + i``) carry over unchanged.

Two implementations of the same function live here and are pinned equal by
the draw-order-invariance tests:

* the pure-Python scalar path (:func:`counter_hash`, :class:`CounterStream`),
* the numpy array path (:func:`counter_hash_array`, :func:`units_of_array`),
  written entirely in ``uint64`` arithmetic (constants are ``np.uint64``:
  numpy 1.x silently promotes ``uint64 op python-int`` to float64, which
  would destroy the wraparound semantics).

Uniform doubles are ``(h >> 11) * 2^-53`` -- the top 53 bits of the hash,
exactly representable in a float64, so the scalar and array paths agree bit
for bit.
"""

from __future__ import annotations

from typing import Any, Sequence

_MASK64 = (1 << 64) - 1

#: golden-ratio increment of the splitmix64 state walk.
_PHI = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: scale of the 53-bit uniform: ``2 ** -53``, exact in binary floating point.
_UNIT_SCALE = 2.0 ** -53


def mix64(z: int) -> int:
    """The splitmix64 finalizer: a bijective scramble of one 64-bit word."""
    z &= _MASK64
    z ^= z >> 30
    z = (z * _MIX1) & _MASK64
    z ^= z >> 27
    z = (z * _MIX2) & _MASK64
    z ^= z >> 31
    return z


def counter_hash(key: int, *counters: int) -> int:
    """A 64-bit hash of ``(key, counters...)``: one draw, order-independent.

    Each counter is absorbed with a golden-ratio state bump followed by the
    splitmix64 scramble, so draws with a different counter tuple (including
    a different arity) are decorrelated.  Callers distinguish draw *types*
    by a leading tag counter, which keeps tuples of different types from
    being prefix extensions of one another.
    """
    z = key & _MASK64
    for counter in counters:
        z = (z + _PHI) & _MASK64
        z = mix64(z ^ (counter & _MASK64))
    return z


def unit_of(h: int) -> float:
    """Map a 64-bit hash to a uniform double in ``[0, 1)`` (top 53 bits)."""
    return (h >> 11) * _UNIT_SCALE


class CounterStream:
    """One named stream of counter-addressed draws under a fixed 64-bit key.

    The scalar-side face of counter-based randomness: oracles call
    :meth:`unit` / :meth:`mod` with their counter tuples, batch duals reuse
    :attr:`key` with the array implementation, and both obtain the same
    values because there is no sequence position to disagree on.
    """

    __slots__ = ("key",)

    def __init__(self, key: int) -> None:
        self.key = key & _MASK64

    def hash(self, *counters: int) -> int:
        """The raw 64-bit draw at *counters*."""
        return counter_hash(self.key, *counters)

    def unit(self, *counters: int) -> float:
        """A uniform double in ``[0, 1)`` at *counters*."""
        return unit_of(counter_hash(self.key, *counters))

    def below(self, probability: float, *counters: int) -> bool:
        """A Bernoulli(*probability*) draw at *counters*."""
        return unit_of(counter_hash(self.key, *counters)) < probability

    def mod(self, modulus: int, *counters: int) -> int:
        """A draw in ``range(modulus)`` at *counters* (negligible modulo bias)."""
        return counter_hash(self.key, *counters) % modulus

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CounterStream(key=0x{self.key:016x})"


# --------------------------------------------------------------------------- #
# the numpy dual: identical values, computed array-wide
# --------------------------------------------------------------------------- #


def _mix64_array(np: Any, z: Any) -> Any:
    z = z ^ (z >> np.uint64(30))
    z = z * np.uint64(_MIX1)
    z = z ^ (z >> np.uint64(27))
    z = z * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


def counter_hash_array(np: Any, keys: Any, counters: Sequence[Any]) -> Any:
    """The array form of :func:`counter_hash`, broadcasting over all inputs.

    *keys* and every entry of *counters* may be scalars or arrays of any
    mutually broadcastable shapes; the result has the broadcast shape and
    dtype uint64, bit-identical to the scalar function element-wise.
    """
    # uint64 wraparound is the point; numpy warns about it on 0-d scalars.
    with np.errstate(over="ignore"):
        z = np.asarray(keys, dtype=np.uint64)
        for counter in counters:
            z = z + np.uint64(_PHI)
            z = _mix64_array(np, z ^ np.asarray(counter, dtype=np.uint64))
    if z.dtype != np.uint64:  # all-scalar inputs collapse to a 0-d value
        z = np.asarray(z, dtype=np.uint64)
    return z


def units_of_array(np: Any, hashes: Any) -> Any:
    """The array form of :func:`unit_of`: uniform float64 in ``[0, 1)``."""
    return (hashes >> np.uint64(11)).astype(np.float64) * _UNIT_SCALE


#: the fused compiled kernel, resolved on first use: False = unresolved,
#: None = unavailable (no numba), else repro.compiled.kernels.counter_units.
_FUSED_UNITS: Any = False


def units_of_counters(np: Any, keys: Any, counters: Sequence[Any]) -> Any:
    """``units_of_array(counter_hash_array(keys, counters))``, fused.

    The hot form of a counter-based uniform draw: when numba is available
    the hash chain and the unit scaling run as one nopython pass with no
    intermediate hash array (:func:`repro.compiled.kernels.counter_units`);
    otherwise the two-step numpy path runs.  Bit-identical either way --
    the top 53 hash bits scale to a float64 exactly.

    The compiled module is imported lazily at first use (this module sits
    below :mod:`repro.compiled` in the layering DAG) and the resolution is
    cached for the life of the process, like :data:`repro._optional.NUMBA`.
    """
    global _FUSED_UNITS
    if _FUSED_UNITS is False:
        from .._optional import have_numba

        if have_numba():
            from ..compiled.kernels import counter_units

            _FUSED_UNITS = counter_units
        else:
            _FUSED_UNITS = None
    if _FUSED_UNITS is not None:
        return _FUSED_UNITS(np, keys, counters)
    return units_of_array(np, counter_hash_array(np, keys, counters))


__all__ = [
    "mix64",
    "counter_hash",
    "unit_of",
    "CounterStream",
    "counter_hash_array",
    "units_of_array",
    "units_of_counters",
]
