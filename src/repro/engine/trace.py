"""The unified clock and trace-recorder protocol of the engine core.

Simulated time is a real-valued global clock that only the engine may
advance; processes never read it.  Trace recording is defined as a
*protocol* rather than a class: the DES keeps its counters on the simulator
object itself, the step-level model records into a
:class:`repro.sysmodel.trace.SystemRunTrace`, and both satisfy
:class:`TraceRecorder` so the shared fault-injection layer can account
crashes and recoveries without knowing which simulator it serves.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..core.types import ProcessId


class Clock:
    """The monotone simulated-time clock owned by the engine core."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, time: float) -> None:
        """Move the clock forward to *time* (never backwards)."""
        if time > self.now:
            self.now = time


@runtime_checkable
class TraceRecorder(Protocol):
    """What the engine needs from a trace: crash / recovery accounting.

    Both :class:`repro.des.simulator.EventSimulator` (which records onto
    itself) and :class:`repro.sysmodel.trace.SystemRunTrace` implement this.
    """

    def record_crash(self, process: ProcessId, time: float) -> None:
        """Account one applied crash of *process* at *time*."""
        ...

    def record_recovery(self, process: ProcessId, time: float) -> None:
        """Account one applied recovery of *process* at *time*."""
        ...


__all__ = ["Clock", "TraceRecorder"]
