"""The shared crash / recovery fault-injection layer.

Both simulators inject the same kind of fault -- a process crashes at a
scheduled time, possibly recovering later -- but used to express it twice:
the DES with ``crash_times`` / ``recovery_times`` maps, the step-level model
with a :class:`FaultSchedule`.  The schedule types now live here, and a
:class:`CrashRecoveryInjector` applies them uniformly:

* :meth:`CrashRecoveryInjector.arm` schedules the fault events into the
  engine's event queue;
* :meth:`CrashRecoveryInjector.apply` runs when a fault event is dispatched,
  calling the simulator-specific ``crash`` / ``recover`` callbacks (which
  return whether they actually changed the process state), recording applied
  faults on the :class:`~repro.engine.trace.TraceRecorder`, and honouring an
  optional *veto* (the system model forbids faults on processes currently
  covered by a good period's synchrony guarantee).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Mapping, Optional

from ..core.types import ProcessId
from .queue import EventQueue
from .trace import TraceRecorder


class FaultKind(enum.Enum):
    """Kinds of timed fault events."""

    CRASH = "crash"
    RECOVER = "recover"


@dataclass(frozen=True)
class FaultEvent:
    """A timed fault event applied to one process."""

    time: float
    kind: FaultKind
    process: ProcessId

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault events cannot happen before time 0, got {self.time}")


@dataclass
class FaultSchedule:
    """An explicit, deterministic schedule of crash and recovery events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: (event.time, event.process))

    @classmethod
    def none(cls) -> "FaultSchedule":
        """No injected faults."""
        return cls(events=[])

    @classmethod
    def crash_stop(cls, crashes: Iterable[tuple[ProcessId, float]]) -> "FaultSchedule":
        """Permanent crashes: each ``(process, time)`` crashes and never recovers."""
        return cls(
            events=[FaultEvent(time, FaultKind.CRASH, process) for process, time in crashes]
        )

    @classmethod
    def crash_recovery(
        cls, incidents: Iterable[tuple[ProcessId, float, float]]
    ) -> "FaultSchedule":
        """Transient crashes: each ``(process, crash_time, recover_time)`` triple."""
        events: List[FaultEvent] = []
        for process, crash_time, recover_time in incidents:
            if recover_time <= crash_time:
                raise ValueError(
                    f"recovery at {recover_time} must come after crash at {crash_time}"
                )
            events.append(FaultEvent(crash_time, FaultKind.CRASH, process))
            events.append(FaultEvent(recover_time, FaultKind.RECOVER, process))
        return cls(events=events)

    @classmethod
    def from_maps(
        cls,
        crash_times: Mapping[ProcessId, float],
        recovery_times: Mapping[ProcessId, float],
    ) -> "FaultSchedule":
        """The DES-style description: per-process crash and recovery times.

        Every recovery must follow a crash of the same process; this is where
        the validation that used to live in ``EventSimulator.__init__`` now
        happens, for both simulators.
        """
        for process, recover_at in recovery_times.items():
            crash_at = crash_times.get(process)
            if crash_at is None or recover_at <= crash_at:
                raise ValueError(
                    f"process {process} recovers at {recover_at} without a prior crash"
                )
        events = [
            FaultEvent(time, FaultKind.CRASH, process)
            for process, time in crash_times.items()
        ]
        events.extend(
            FaultEvent(time, FaultKind.RECOVER, process)
            for process, time in recovery_times.items()
        )
        return cls(events=events)

    def affected_processes(self) -> frozenset[ProcessId]:
        """Processes hit by at least one event."""
        return frozenset(event.process for event in self.events)

    def merged_with(self, other: "FaultSchedule") -> "FaultSchedule":
        """A schedule containing the events of both schedules."""
        return FaultSchedule(events=self.events + other.events)


#: Simulator-side fault application: returns True when the process state changed.
FaultCallback = Callable[[ProcessId], bool]
#: Optional veto: returns True when the fault event must be skipped.
FaultVeto = Callable[[FaultEvent], bool]


class CrashRecoveryInjector:
    """Applies a :class:`FaultSchedule` to a simulator, uniformly.

    The simulator supplies ``crash`` / ``recover`` callbacks that flip its
    own process state (and return whether they did); the injector owns the
    scheduling, the veto bookkeeping and the trace accounting.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        crash: FaultCallback,
        recover: FaultCallback,
        veto: Optional[FaultVeto] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.schedule = schedule
        self._crash = crash
        self._recover = recover
        self._veto = veto
        self._recorder = recorder
        #: fault events skipped because the veto refused them (e.g. faults
        #: falling inside a good period's synchronous scope).
        self.skipped: List[FaultEvent] = []

    def arm(self, queue: EventQueue) -> None:
        """Schedule every fault event of the schedule into *queue*."""
        for event in self.schedule.events:
            queue.schedule(event.time, event)

    def apply(self, event: FaultEvent) -> bool:
        """Dispatch one fault event; returns whether it changed process state."""
        if self._veto is not None and self._veto(event):
            self.skipped.append(event)
            return False
        if event.kind is FaultKind.CRASH:
            applied = self._crash(event.process)
            if applied and self._recorder is not None:
                self._recorder.record_crash(event.process, event.time)
        elif event.kind is FaultKind.RECOVER:
            applied = self._recover(event.process)
            if applied and self._recorder is not None:
                self._recorder.record_recovery(event.process, event.time)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown fault kind {event.kind!r}")
        return applied


__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "CrashRecoveryInjector",
    "FaultCallback",
    "FaultVeto",
]
