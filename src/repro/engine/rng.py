"""Seeded randomness with named, mutually isolated sub-streams.

A simulation draws random numbers for several unrelated concerns: channel
loss, channel delay, bad-period step gaps, fault timing.  Feeding them all
from one ``random.Random`` couples them -- changing the channel noise model
shifts every later draw and silently perturbs fault timing, which makes
A/B experiments incomparable and replay debugging miserable.

:class:`SeededRng` derives one independent ``random.Random`` per *named*
stream from a single master seed, so that

* the same ``(seed, name)`` pair always yields the same stream
  (deterministic replay), and
* draws on one stream never affect any other stream (isolation).

Stream seeds are derived with SHA-256 over ``"{seed}:{name}"``, so they are
stable across processes and Python versions (no reliance on ``hash()``).
"""

from __future__ import annotations

import hashlib
import random  # repro: noqa[REP001] -- SeededRng IS the sanctioned wrapper around the random module
from typing import Dict, Iterator, Tuple

from .counter import CounterStream


def derive_seed(seed: int, name: str) -> int:
    """A stable 64-bit sub-seed for stream *name* under master *seed*."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """A family of named, independent random streams under one master seed."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The ``random.Random`` of sub-stream *name* (created on first use)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def counter_stream(self, name: str) -> CounterStream:
        """The counter-based stream *name*: stateless, order-independent draws.

        Unlike :meth:`stream`, the returned :class:`~repro.engine.counter.
        CounterStream` carries no cursor -- every draw is a pure function of
        the derived key and the caller's counter tuple, so scalar and
        vectorised consumers of the same ``(seed, name)`` pair are
        bit-identical by construction.  The key derivation is the same
        :func:`derive_seed` the sequential streams use, so isolation between
        names and the :meth:`replicate` contract are preserved.
        """
        return CounterStream(derive_seed(self.seed, name))

    def spawn(self, name: str) -> "SeededRng":
        """A derived :class:`SeededRng` whose streams are independent of this one."""
        return SeededRng(derive_seed(self.seed, name))

    def replicate(self, index: int) -> "SeededRng":
        """The rng of batch replica *index*: exactly the single run seeded ``seed + index``.

        Sweep grids enumerate seeds as consecutive integers, so "replica
        ``i`` of a batch rooted at ``seed``" and "the single run with seed
        ``seed + i``" must be the same experiment.  ``replicate`` therefore
        deliberately re-roots the whole stream family at ``seed + index``
        rather than deriving a hashed sub-seed: every named stream of the
        returned rng is bit-identical to the stream the corresponding single
        run would draw from, which is what lets the batch backends promise
        per-seed bit-identical replicas.
        """
        if index < 0:
            raise ValueError(f"replica index must be non-negative, got {index}")
        return SeededRng(self.seed + index)

    def streams(self) -> Iterator[Tuple[str, random.Random]]:
        """The streams created so far (for state snapshots in tests)."""
        return iter(self._streams.items())


__all__ = ["SeededRng", "derive_seed"]
