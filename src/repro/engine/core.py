"""The engine core: clock + event queue + seeded randomness + one run loop.

A simulator built on :class:`EngineCore` is a *policy layer*: it decides
what events mean (message delivery vs. process step), while the core owns
the mechanics every discrete-event simulation shares --

* the future-event list (:class:`~repro.engine.queue.EventQueue`),
* the simulated clock (:class:`~repro.engine.trace.Clock`),
* named random sub-streams (:class:`~repro.engine.rng.SeededRng`),
* the drain loop with an optional early-stop predicate.

Fault injection plugs in via
:class:`~repro.engine.faults.CrashRecoveryInjector`: the injector arms the
queue with :class:`~repro.engine.faults.FaultEvent` entries and the policy
layer routes them back to :meth:`CrashRecoveryInjector.apply` from its
dispatch function.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .faults import CrashRecoveryInjector, FaultSchedule
from .queue import EventQueue
from .rng import SeededRng
from .trace import Clock, TraceRecorder

Dispatch = Callable[[Any], None]
StopCondition = Callable[[], bool]


class EngineCore:
    """The shared kernel both simulators delegate to."""

    __slots__ = ("clock", "queue", "rng", "injector")

    def __init__(self, seed: int = 0) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.rng = SeededRng(seed)
        self.injector: Optional[CrashRecoveryInjector] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def attach_faults(
        self,
        schedule: FaultSchedule,
        *,
        crash,
        recover,
        veto=None,
        recorder: Optional[TraceRecorder] = None,
    ) -> CrashRecoveryInjector:
        """Create the fault injector for *schedule* (armed later, at start-up)."""
        self.injector = CrashRecoveryInjector(
            schedule, crash=crash, recover=recover, veto=veto, recorder=recorder
        )
        return self.injector

    def arm_faults(self) -> None:
        """Schedule the attached fault events into the queue."""
        if self.injector is not None:
            self.injector.arm(self.queue)

    def run(
        self,
        until: float,
        dispatch: Dispatch,
        stop_when: Optional[StopCondition] = None,
    ) -> bool:
        """Drain events with ``time <= until`` through *dispatch*.

        The clock advances to each event's time before it is dispatched and,
        unless *stop_when* fired, ends at ``max(now, until)``.  Returns
        whether the run stopped early.
        """
        stopped = stop_when is not None and stop_when()
        while not stopped:
            next_time = self.queue.next_time()
            if next_time is None or next_time > until:
                break
            time, _, event = self.queue.pop()
            self.clock.advance(time)
            dispatch(event)
            if stop_when is not None and stop_when():
                stopped = True
        if not stopped:
            self.clock.advance(until)
        return stopped


__all__ = ["EngineCore", "Dispatch", "StopCondition"]
