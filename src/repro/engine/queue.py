"""The shared event-queue kernel: a (time, sequence)-ordered min-heap.

Both simulators of the library -- the message-driven
:class:`repro.des.simulator.EventSimulator` and the step-driven
:class:`repro.sysmodel.simulator.SystemSimulator` -- used to own their own
``heapq`` + ``itertools.count`` scheduling code.  This module is the single
implementation they now delegate to.

Events are arbitrary objects; the queue imposes the ordering externally by
storing ``(time, sequence, event)`` triples, so event classes need neither a
``__lt__`` nor a sequence field of their own.  Sequence numbers are handed
out by the queue and guarantee FIFO order among events scheduled for the
same simulated time -- the property every deterministic-replay guarantee in
this repository rests on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, List, Optional, Tuple


class EventQueue:
    """A deterministic future-event list ordered by ``(time, sequence)``."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def next_sequence(self) -> int:
        """Hand out the next global sequence number (also used for event ids)."""
        return next(self._counter)

    def schedule(self, time: float, event: Any, sequence: Optional[int] = None) -> int:
        """Insert *event* at *time*; returns the sequence number used for ordering.

        A caller that already drew a number from :meth:`next_sequence` (for
        example to stamp it into a public event dataclass) passes it back via
        *sequence* so queue order and event numbering agree.
        """
        if sequence is None:
            sequence = next(self._counter)
        heapq.heappush(self._heap, (time, sequence, event))
        return sequence

    def next_time(self) -> Optional[float]:
        """The timestamp of the earliest pending event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the earliest ``(time, sequence, event)`` triple."""
        return heapq.heappop(self._heap)

    def pop_due(self, until: float) -> Iterator[Tuple[float, Any]]:
        """Yield ``(time, event)`` for every event with ``time <= until``, in order."""
        while self._heap and self._heap[0][0] <= until:
            time, _, event = heapq.heappop(self._heap)
            yield time, event

    def clear(self) -> None:
        """Drop all pending events (sequence numbering keeps running)."""
        self._heap.clear()


__all__ = ["EventQueue"]
