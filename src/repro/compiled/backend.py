"""The ``compiled`` execution backend: JIT when possible, degrade when not.

:class:`CompiledBackend` is the decision layer in front of the
:class:`~repro.compiled.engine.CompiledEngine`, mirroring
:class:`repro.batch.backends.BatchBackend` one tier up.  For every
:class:`~repro.rounds.backend.ReplicaBatch` it checks whether the fused
compiled loop can engage:

1. numpy and numba are available (the ``fast``/``compiled`` extras;
   honours ``REPRO_DISABLE_NUMPY`` / ``REPRO_DISABLE_NUMBA``);
2. every replica runs the same algorithm class, a batched kernel is
   registered for it, *and* that kernel has a compiled dual
   (:func:`repro.compiled.kernels.compiled_kernel_for`);
3. the cell is neither monitored nor fingerprinted (both need per-round
   Python observation, which is exactly the dispatch the fused loop
   removes -- they keep the numpy batch path, whose monitors and
   fingerprints are already bit-identical to scalar);
4. the batch's oracles vectorise without the stateful per-replica query
   loop (chunked mask precompute needs pure, order-free oracles).

When any check fails the batch runs on the numpy
:class:`~repro.batch.backends.BatchBackend` instead -- which itself
degrades further to the scalar reference when *its* checks fail -- so
outcomes are identical at every tier, replica by replica.
``last_fallback_reason`` records why (None = the compiled loop ran); the
chained batch backend's own ``last_fallback_reason`` records the second
hop when the degradation went all the way to scalar.

``interpreted=True`` runs the exact compiled-core code objects under
CPython instead of numba -- the test mode that lets a numba-free
environment pin the cores' bit-identity.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .._optional import have_numba, have_numpy
from ..batch.backends import BatchBackend
from ..rounds.backend import ReplicaBatch, ReplicaOutcome, register_backend
from ..rounds.fallback import FallbackReason
from .engine import CompiledEngine
from .kernels import compiled_kernel_for


def _needs_replica_loop(oracle: Any) -> bool:
    """Whether a vectorised oracle resolves to the stateful query loop."""
    from ..adversaries.batch import IntersectBatchOracle, PerReplicaBatchOracle

    if isinstance(oracle, PerReplicaBatchOracle):
        return True
    if isinstance(oracle, IntersectBatchOracle):
        return any(
            isinstance(component, PerReplicaBatchOracle)
            for component in oracle.components
        )
    return False


class CompiledBackend:
    """Fused compiled execution of replica batches, with a numpy safety net."""

    name = "compiled"

    def __init__(
        self, force_fallback: bool = False, interpreted: bool = False
    ) -> None:
        self.force_fallback = force_fallback
        #: run the cores under CPython even without numba (test mode).
        self.interpreted = interpreted
        self._batch = BatchBackend()
        #: why the last ``run`` degraded to the numpy batch path (None =
        #: the fused loop ran).  Diagnostic only; outcomes are identical.
        self.last_fallback_reason: Optional[str] = None

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        reason = self._fallback_reason(batch)
        engine: Optional[CompiledEngine] = None
        if reason is None:
            engine, reason = self._try_build_engine(batch)
        self.last_fallback_reason = reason
        if engine is None:
            return self._batch.run(batch)
        return engine.run()

    # ------------------------------------------------------------------ #
    # the compilation decision
    # ------------------------------------------------------------------ #

    def _fallback_reason(self, batch: ReplicaBatch) -> Optional[str]:
        if self.force_fallback:
            return FallbackReason.FORCED.render()
        if not have_numpy():
            return FallbackReason.NO_NUMPY.render()
        if not self.interpreted and not have_numba():
            return FallbackReason.NO_NUMBA.render()
        from ..algorithms.batched import batch_kernel_for

        if any(task.algorithm.n != batch.n for task in batch.tasks):
            return FallbackReason.SIZE_MISMATCH.render()
        algorithm_classes = {type(task.algorithm) for task in batch.tasks}
        if len(algorithm_classes) != 1:
            return FallbackReason.MIXED_ALGORITHMS.render(
                classes=sorted(c.__name__ for c in algorithm_classes)
            )
        kernel_class = batch_kernel_for(batch.tasks[0].algorithm)
        if kernel_class is None:
            return FallbackReason.NO_BATCH_KERNEL.render(
                algorithm=batch.tasks[0].algorithm.__class__.__name__
            )
        if compiled_kernel_for(kernel_class) is None:
            return FallbackReason.NO_COMPILED_KERNEL.render(
                kernel=kernel_class.__name__
            )
        if batch.monitor_factory is not None or batch.monitor_spec is not None:
            return FallbackReason.MONITORED_COMPILED_CELL.render()
        if batch.fingerprints:
            return FallbackReason.FINGERPRINTED_COMPILED_CELL.render()
        return None

    def _try_build_engine(
        self, batch: ReplicaBatch
    ) -> Tuple[Optional[CompiledEngine], Optional[str]]:
        from ..adversaries.batch import vectorize_oracles
        from ..algorithms.batched import BatchUnsupported, batch_kernel_for

        kernel_class = batch_kernel_for(batch.tasks[0].algorithm)
        assert kernel_class is not None
        spec = compiled_kernel_for(kernel_class)
        assert spec is not None
        try:
            kernel = kernel_class.from_batch(batch)
        except BatchUnsupported as exc:
            # Unencodable values are only detectable by trying; degrade.
            return None, str(exc)
        oracle = vectorize_oracles(
            [task.oracle for task in batch.tasks], batch.replicas
        )
        if _needs_replica_loop(oracle):
            return None, FallbackReason.OPAQUE_COMPILED_ORACLE.render()
        compiled = have_numba() and not self.interpreted
        return CompiledEngine(batch, kernel, oracle, spec, compiled), None


register_backend(CompiledBackend())


__all__ = ["CompiledBackend"]
