"""The fused multi-round loop: K rounds per compiled call.

Where :class:`repro.batch.engine.BatchEngine` makes one Python round-trip
per round (oracle query, unpack, kernel ``step``, accounting),
:class:`CompiledEngine` precomputes a *chunk* of K rounds of oracle mask
words into one ``(K, R, n, W)`` uint64 buffer and hands the whole chunk to
a single compiled call (:mod:`repro.compiled.kernels`), which runs the
oracle-draw -> heard-mask-build -> kernel-step -> decision-retire cycle
for every replica with no interpreter dispatch in between.

Chunk precompute is sound because the backend only admits *pure* batch
oracles -- broadcast wrappers over deterministic scalar oracles and the
counter-based duals, whose ``round_masks`` is a function of the round
number alone (recurrence duals advance monotonically, which chunked
forward queries respect).  The stateful :class:`PerReplicaBatchOracle`
loop, whose query order must replay the scalar runs exactly, is rejected
upstream (``OPAQUE_COMPILED_ORACLE``).  A chunk may query rounds the
scalar path never reaches (replicas that decide mid-chunk); if an oracle
raises mid-precompute the chunk truncates, and the error surfaces only if
replicas are still active when the failing round is reached -- exactly
when the scalar reference would have raised it.

The between-round decide-scope poll lives *inside* the compiled cores
(replicas retire the moment their scope decided, mid-chunk); the engine
additionally polls before each chunk so a batch that starts decided (for
example an empty decide scope) never queries its oracle at all, matching
the scalar loop.
"""

from __future__ import annotations

from typing import Any, List

from .._optional import require_numpy
from ..algorithms.batched import BatchKernel
from ..rounds.backend import ReplicaBatch, ReplicaOutcome
from ..rounds.bitmask import WORD_BITS, iter_bits, word_count
from .kernels import CompiledKernel

#: rounds per compiled call after the first chunk.
CHUNK_ROUNDS = 64
#: a smaller first chunk: fault-free cells decide within a few rounds, and
#: precomputed masks past the decision are wasted oracle work.
FIRST_CHUNK_ROUNDS = 8


class CompiledEngine:
    """Run a :class:`ReplicaBatch` through the fused compiled round loop.

    *kernel* is the numpy batch kernel holding the replicas' state arrays
    (the compiled cores mutate them in place, so the kernel's decode
    helpers assemble the outcomes); *spec* is its registered
    :class:`~repro.compiled.kernels.CompiledKernel`; *compiled* selects
    jitted cores (False = the backend's interpreted test mode).
    """

    def __init__(
        self,
        batch: ReplicaBatch,
        kernel: BatchKernel,
        oracle: Any,
        spec: CompiledKernel,
        compiled: bool,
    ) -> None:
        np = require_numpy()
        self.np = np
        self.batch = batch
        self.kernel = kernel
        self.oracle = oracle
        self.spec = spec
        self.compiled = compiled
        self.n = batch.n
        self.replicas = batch.replicas
        if kernel.n != self.n or kernel.replicas != self.replicas:
            raise ValueError("kernel shape does not match the batch")
        if oracle.n != self.n or oracle.replicas != self.replicas:
            raise ValueError("oracle shape does not match the batch")

    def run(self) -> List[ReplicaOutcome]:
        np = self.np
        batch = self.batch
        kernel = self.kernel
        n = self.n
        replicas = self.replicas
        words_per_row = word_count(n)
        scope_list = list(iter_bits(batch.effective_scope_mask))
        scope = np.array(scope_list, dtype=np.int64)
        # Heard-bit lookup per sender: its word index and its bit's mask.
        # Precomputing both keeps runtime shifts (whose mixed-width
        # semantics vary) out of the cores entirely.
        senders = np.arange(n, dtype=np.uint64)
        word_of = np.arange(n, dtype=np.int64) // WORD_BITS
        bitmask = np.uint64(1) << (senders % np.uint64(WORD_BITS))

        active = np.ones(replicas, dtype=bool)
        rounds_executed = np.zeros(replicas, dtype=np.int64)
        messages_sent = np.zeros(replicas, dtype=np.int64)
        messages_delivered = np.zeros(replicas, dtype=np.int64)
        full_horizon = bool(batch.run_full_horizon)

        round = 0
        chunk = FIRST_CHUNK_ROUNDS
        while round < batch.max_rounds:
            if not full_horizon:
                active &= ~kernel.scope_all_decided(scope_list)
            if not active.any():
                break
            k_max = min(chunk, batch.max_rounds - round)
            chunk = CHUNK_ROUNDS
            words = np.empty((k_max, replicas, n, words_per_row), dtype=np.uint64)
            filled = 0
            error = None
            for k in range(k_max):
                try:
                    words[k] = self.oracle.round_masks(round + k + 1, active)
                except Exception as exc:  # truncate; re-raised iff reached
                    error = exc
                    break
                filled += 1
            if filled == 0:
                # Replicas are active and the next round's masks are
                # unobtainable: the scalar reference would raise here too.
                raise error
            self.spec.runner(
                kernel, self.compiled, words[:filled], word_of, bitmask,
                round, full_horizon, scope, active,
                rounds_executed, messages_sent, messages_delivered,
            )
            round += filled

        outcomes: List[ReplicaOutcome] = []
        for r, task in enumerate(batch.tasks):
            decisions, decision_rounds = kernel.decisions_of(r)
            outcomes.append(
                ReplicaOutcome(
                    seed=task.seed,
                    decisions=decisions,
                    decision_rounds=decision_rounds,
                    rounds_executed=int(rounds_executed[r]),
                    messages_sent=int(messages_sent[r]),
                    messages_delivered=int(messages_delivered[r]),
                    stopped_early=False,
                    predicate_reports=None,
                    fingerprint=None,
                )
            )
        return outcomes


__all__ = ["CHUNK_ROUNDS", "FIRST_CHUNK_ROUNDS", "CompiledEngine"]
