"""The compiled kernel tier: JIT'd transition kernels behind the registry.

Importing this package registers the ``compiled`` execution backend
(:class:`~repro.compiled.backend.CompiledBackend`) and the compiled duals
of the batched transition kernels (:mod:`repro.compiled.kernels`).  The
backend registry (:func:`repro.rounds.backend.get_backend`) imports it
lazily, and resolves ``auto`` to ``compiled`` exactly when numba is
importable -- without numba the tier is still registered, and every run
degrades to the numpy batch path (and further to scalar) with identical
results.
"""

from .backend import CompiledBackend
from .engine import CompiledEngine
from .kernels import (
    CompiledKernel,
    compiled_kernel_for,
    counter_units,
    register_compiled_kernel,
)

__all__ = [
    "CompiledBackend",
    "CompiledEngine",
    "CompiledKernel",
    "compiled_kernel_for",
    "counter_units",
    "register_compiled_kernel",
]
