"""Nopython duals of the batched transition kernels and the splitmix64 path.

Every function here is written in *nopython style* -- explicit loops over
preallocated arrays, no Python objects, no fancy indexing -- so that the
very same code object runs two ways:

* **jitted**: when numba is importable (:data:`repro._optional.NUMBA`),
  each core is wrapped in ``@njit`` at import time and the fused round
  loop of :class:`repro.compiled.engine.CompiledEngine` runs K rounds per
  compiled call;
* **interpreted**: without numba (or under the backend's ``interpreted``
  test mode) the plain function runs under CPython on the same arrays.
  This is how the numba-free container pins the cores' bit-identity
  against the numpy batch kernels and the scalar reference.

A *chunk core* advances all R replicas through up to K rounds of one
algorithm: per active replica it polls the decide-scope (the scalar
between-round poll), unpacks the round's heard-bits from the
``(K, R, n, W)`` uint64 word chunk via precomputed ``word_of``/``bitmask``
lookups (no runtime shifts -- mixed-width shift semantics differ between
numpy builds), applies the transition with the numpy kernels' exact
tie-breaks, latches first decisions, and updates the message accounting.
Replicas are independent, so the replica-outer loop is exactly the
lockstep semantics of :class:`repro.batch.engine.BatchEngine`.

The registry at the bottom (:class:`CompiledKernel`,
:func:`register_compiled_kernel`, :func:`compiled_kernel_for`) maps each
batch kernel class to its compiled dual plus the parity test that pins it
-- audited by the ``repro.lint`` rule REP106.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Type

from .._optional import NUMBA, NUMPY
from ..algorithms.batched import (
    BatchKernel,
    BatchLastVoting,
    BatchOneThirdRule,
    BatchUniformVoting,
)
from ..algorithms.last_voting import LastVoting
from ..algorithms.one_third_rule import OneThirdRule
from ..algorithms.uniform_voting import UniformVoting

# The splitmix64 constants -- shared with the scalar/array implementations
# in repro.engine.counter (friend access; one definition per constant).
from ..engine.counter import _MIX1, _MIX2, _PHI, _UNIT_SCALE
from ..predimpl.batched_translation import BatchTranslationKernel
from ..predimpl.translation import KernelToUniformTranslation

np = NUMPY

if np is not None:
    # uint64-typed constants: inside the cores every uint64 operand must
    # already be uint64 -- mixed-width arithmetic promotes to float64 under
    # numpy and mis-types under numba.
    _U_PHI = np.uint64(_PHI)
    _U_MIX1 = np.uint64(_MIX1)
    _U_MIX2 = np.uint64(_MIX2)
    _U_30 = np.uint64(30)
    _U_27 = np.uint64(27)
    _U_31 = np.uint64(31)
    _U_11 = np.uint64(11)


# --------------------------------------------------------------------------- #
# the fused splitmix64 counter-units core
# --------------------------------------------------------------------------- #


def _counter_units_core(keys: Any, counters: Any, out: Any) -> None:
    """Fused ``unit_of(counter_hash(...))`` over flat arrays.

    ``keys`` is ``(N,)`` uint64, ``counters`` is ``(C, N)`` uint64 (one row
    per counter position), ``out`` is ``(N,)`` float64.  One pass, no
    intermediate hash array -- the top 53 bits scale to a float64 exactly,
    so the result is bit-identical to the two-step numpy path.
    """
    C = counters.shape[0]
    for i in range(keys.shape[0]):
        z = keys[i]
        for c in range(C):
            z = z + _U_PHI
            z = z ^ counters[c, i]
            z = z ^ (z >> _U_30)
            z = z * _U_MIX1
            z = z ^ (z >> _U_27)
            z = z * _U_MIX2
            z = z ^ (z >> _U_31)
        out[i] = np.float64(z >> _U_11) * _UNIT_SCALE


def counter_units(
    np_mod: Any, keys: Any, counters: Any, compiled: Optional[bool] = None
) -> Any:
    """The fused form of ``units_of_array(counter_hash_array(keys, counters))``.

    Broadcasts like :func:`repro.engine.counter.counter_hash_array`, then
    hashes and scales in one nopython pass.  *compiled* selects the jitted
    (True) or interpreted (False) core; None means "jitted when numba is
    available".  Values are bit-identical either way.
    """
    if compiled is None:
        compiled = _counter_units_jit is not None
    arrays = np_mod.broadcast_arrays(
        np_mod.asarray(keys, dtype=np_mod.uint64),
        *[np_mod.asarray(c, dtype=np_mod.uint64) for c in counters],
    )
    shape = arrays[0].shape
    flat_keys = np_mod.ascontiguousarray(arrays[0]).reshape(-1)
    size = flat_keys.shape[0]
    stacked = np_mod.empty((len(counters), size), dtype=np_mod.uint64)
    for i, counter in enumerate(arrays[1:]):
        stacked[i, :] = counter.reshape(-1)
    out = np_mod.empty(size, dtype=np_mod.float64)
    if compiled and _counter_units_jit is not None:
        _counter_units_jit(flat_keys, stacked, out)
    else:
        # uint64 wraparound is the point; numpy warns about it on scalars.
        with np_mod.errstate(over="ignore"):
            _counter_units_core(flat_keys, stacked, out)
    return out.reshape(shape)


# --------------------------------------------------------------------------- #
# the chunk cores: K fused rounds per call, replica-outer
# --------------------------------------------------------------------------- #


def _otr_chunk(
    words: Any,
    word_of: Any,
    bitmask: Any,
    base_round: int,
    full_horizon: bool,
    scope: Any,
    active: Any,
    x: Any,
    decision_code: Any,
    decision_round: Any,
    rounds_executed: Any,
    messages_sent: Any,
    messages_delivered: Any,
) -> None:
    """K rounds of :class:`BatchOneThirdRule` for every active replica."""
    K = words.shape[0]
    R = words.shape[1]
    n = x.shape[1]
    heard = np.empty((n, n), dtype=np.bool_)
    hcs = np.empty(n, dtype=np.int64)
    newx = np.empty(n, dtype=np.int32)
    counts = np.empty(n, dtype=np.int32)
    for r in range(R):
        if not active[r]:
            continue
        for k in range(K):
            if not full_horizon:
                done = True
                for si in range(scope.shape[0]):
                    if decision_code[r, scope[si]] < 0:
                        done = False
                        break
                if done:
                    active[r] = False
                    break
            rnd = base_round + k + 1
            delivered = 0
            for p in range(n):
                hc = 0
                for q in range(n):
                    h = (words[k, r, p, word_of[q]] & bitmask[q]) != 0
                    heard[p, q] = h
                    if h:
                        hc += 1
                hcs[p] = hc
                delivered += hc
            for p in range(n):
                hc = hcs[p]
                if 3 * hc > 2 * n:
                    for v in range(n):
                        counts[v] = 0
                    minheard = n + 1
                    for q in range(n):
                        if heard[p, q]:
                            c = x[r, q]
                            counts[c] += 1
                            if c < minheard:
                                minheard = c
                    top = 0
                    for v in range(n):
                        if counts[v] > top:
                            top = counts[v]
                    # Counter.most_common tie-break: the first heard sender
                    # whose value attains the top count carries the winner.
                    winner = 0
                    for q in range(n):
                        if heard[p, q] and counts[x[r, q]] == top:
                            winner = x[r, q]
                            break
                    if hc - top <= n // 3:
                        newx[p] = winner
                    else:
                        newx[p] = minheard
                    if 3 * top > 2 * n and decision_code[r, p] < 0:
                        decision_code[r, p] = winner
                        decision_round[r, p] = rnd
                else:
                    newx[p] = x[r, p]
            for p in range(n):
                x[r, p] = newx[p]
            rounds_executed[r] = rnd
            messages_sent[r] += n * n
            messages_delivered[r] += delivered


def _uv_chunk(
    words: Any,
    word_of: Any,
    bitmask: Any,
    base_round: int,
    full_horizon: bool,
    scope: Any,
    active: Any,
    x: Any,
    vote: Any,
    decision_code: Any,
    decision_round: Any,
    rounds_executed: Any,
    messages_sent: Any,
    messages_delivered: Any,
) -> None:
    """K rounds of :class:`BatchUniformVoting` for every active replica."""
    K = words.shape[0]
    R = words.shape[1]
    n = x.shape[1]
    heard = np.empty((n, n), dtype=np.bool_)
    newx = np.empty(n, dtype=np.int32)
    for r in range(R):
        if not active[r]:
            continue
        for k in range(K):
            if not full_horizon:
                done = True
                for si in range(scope.shape[0]):
                    if decision_code[r, scope[si]] < 0:
                        done = False
                        break
                if done:
                    active[r] = False
                    break
            rnd = base_round + k + 1
            delivered = 0
            for p in range(n):
                for q in range(n):
                    h = (words[k, r, p, word_of[q]] & bitmask[q]) != 0
                    heard[p, q] = h
                    if h:
                        delivered += 1
            if rnd % 2 == 1:
                # Voting round: vote the common estimate iff unanimous.
                for p in range(n):
                    hc = 0
                    lo = n + 1
                    hi = -1
                    for q in range(n):
                        if heard[p, q]:
                            hc += 1
                            c = x[r, q]
                            if c < lo:
                                lo = c
                            if c > hi:
                                hi = c
                    if hc > 0 and lo == hi:
                        vote[r, p] = lo
                    else:
                        vote[r, p] = -1
            else:
                # Resolve round: adopt the first heard vote (or the min
                # estimate), decide iff every heard sender voted.
                for p in range(n):
                    hc = 0
                    nv = 0
                    first_vote = -1
                    minheard = n + 1
                    for q in range(n):
                        if heard[p, q]:
                            hc += 1
                            c = x[r, q]
                            if c < minheard:
                                minheard = c
                            if vote[r, q] >= 0:
                                if nv == 0:
                                    first_vote = vote[r, q]
                                nv += 1
                    if hc > 0:
                        if nv > 0:
                            newx[p] = first_vote
                        else:
                            newx[p] = minheard
                        if nv == hc and decision_code[r, p] < 0:
                            decision_code[r, p] = first_vote
                            decision_round[r, p] = rnd
                    else:
                        newx[p] = x[r, p]
                for p in range(n):
                    x[r, p] = newx[p]
                    vote[r, p] = -1
            rounds_executed[r] = rnd
            messages_sent[r] += n * n
            messages_delivered[r] += delivered


def _lv_chunk(
    words: Any,
    word_of: Any,
    bitmask: Any,
    base_round: int,
    full_horizon: bool,
    scope: Any,
    active: Any,
    x: Any,
    timestamp: Any,
    vote: Any,
    commit: Any,
    ready: Any,
    rank_of_code: Any,
    code_at_rank: Any,
    rounds_per_phase: int,
    decision_code: Any,
    decision_round: Any,
    rounds_executed: Any,
    messages_sent: Any,
    messages_delivered: Any,
) -> None:
    """K rounds of :class:`BatchLastVoting` for every active replica."""
    K = words.shape[0]
    R = words.shape[1]
    n = x.shape[1]
    heard = np.empty((n, n), dtype=np.bool_)
    for r in range(R):
        if not active[r]:
            continue
        for k in range(K):
            if not full_horizon:
                done = True
                for si in range(scope.shape[0]):
                    if decision_code[r, scope[si]] < 0:
                        done = False
                        break
                if done:
                    active[r] = False
                    break
            rnd = base_round + k + 1
            delivered = 0
            for p in range(n):
                for q in range(n):
                    h = (words[k, r, p, word_of[q]] & bitmask[q]) != 0
                    heard[p, q] = h
                    if h:
                        delivered += 1
            phase = (rnd - 1) // rounds_per_phase + 1
            step = (rnd - 1) % rounds_per_phase + 1
            coord = (phase - 1) % n
            if step == 1:
                # Coordinator selects the best-timestamped estimate from a
                # majority, smallest by repr-rank among ties.
                hc = 0
                for q in range(n):
                    if heard[coord, q]:
                        hc += 1
                if 2 * hc > n:
                    best_ts = -1
                    for q in range(n):
                        if heard[coord, q] and timestamp[r, q] > best_ts:
                            best_ts = timestamp[r, q]
                    best_rank = n
                    for q in range(n):
                        if heard[coord, q] and timestamp[r, q] == best_ts:
                            rk = rank_of_code[r, x[r, q]]
                            if rk < best_rank:
                                best_rank = rk
                    if best_rank > n - 1:
                        best_rank = n - 1
                    vote[r, coord] = code_at_rank[r, best_rank]
                    commit[r, coord] = True
            elif step == 2:
                # Everyone who hears a committed coordinator adopts its vote.
                if commit[r, coord]:
                    v = vote[r, coord]
                    for p in range(n):
                        if heard[p, coord]:
                            x[r, p] = v
                            timestamp[r, p] = phase
            elif step == 3:
                # Coordinator counts current-phase acks for a majority.
                acks = 0
                for q in range(n):
                    if heard[coord, q] and timestamp[r, q] == phase:
                        acks += 1
                if 2 * acks > n:
                    ready[r, coord] = True
            else:
                # Step 4: decide on a heard "decide"; phase flags reset.
                if ready[r, coord]:
                    v = vote[r, coord]
                    for p in range(n):
                        if heard[p, coord] and decision_code[r, p] < 0:
                            decision_code[r, p] = v
                            decision_round[r, p] = rnd
                for p in range(n):
                    commit[r, p] = False
                    ready[r, p] = False
            rounds_executed[r] = rnd
            messages_sent[r] += n * n
            messages_delivered[r] += delivered


def _translation_chunk(
    words: Any,
    word_of: Any,
    bitmask: Any,
    base_round: int,
    full_horizon: bool,
    scope: Any,
    active: Any,
    listen: Any,
    known: Any,
    f: int,
    rounds_per_macro: int,
    x: Any,
    decision_code: Any,
    decision_round: Any,
    rounds_executed: Any,
    messages_sent: Any,
    messages_delivered: Any,
) -> None:
    """K rounds of :class:`BatchTranslationKernel` for every active replica.

    ``x``/``decision_code``/``decision_round`` are the *inner*
    BatchOneThirdRule arrays; the macro-round boundary feeds the NewHO
    matrix straight into the inlined OneThirdRule transition.
    """
    K = words.shape[0]
    R = words.shape[1]
    n = x.shape[1]
    heard = np.empty((n, n), dtype=np.bool_)
    scratch = np.empty((n, n), dtype=np.bool_)
    new_ho = np.empty((n, n), dtype=np.bool_)
    newx = np.empty(n, dtype=np.int32)
    counts = np.empty(n, dtype=np.int32)
    for r in range(R):
        if not active[r]:
            continue
        for k in range(K):
            if not full_horizon:
                done = True
                for si in range(scope.shape[0]):
                    if decision_code[r, scope[si]] < 0:
                        done = False
                        break
                if done:
                    active[r] = False
                    break
            rnd = base_round + k + 1
            delivered = 0
            for p in range(n):
                for q in range(n):
                    h = (words[k, r, p, word_of[q]] & bitmask[q]) != 0
                    heard[p, q] = h
                    if h:
                        delivered += 1
                    # listen' = listen & heard, the round's gossip sources
                    listen[r, p, q] = listen[r, p, q] and h
            if rnd % rounds_per_macro != 0:
                # Gossip merge over the start-of-round known (messages
                # carry pre-transition state): scratch, then commit.
                for p in range(n):
                    for kk in range(n):
                        v = known[r, p, kk]
                        if not v:
                            for q in range(n):
                                if listen[r, p, q] and known[r, q, kk]:
                                    v = True
                                    break
                        scratch[p, kk] = v
                for p in range(n):
                    for kk in range(n):
                        known[r, p, kk] = scratch[p, kk]
            else:
                # Macro-round boundary: NewHO = report count >= n - f,
                # feeding the inner OneThirdRule transition.
                for p in range(n):
                    for kk in range(n):
                        cnt = 0
                        for q in range(n):
                            if listen[r, p, q] and known[r, q, kk]:
                                cnt += 1
                        new_ho[p, kk] = cnt >= n - f
                for p in range(n):
                    hc = 0
                    for q in range(n):
                        if new_ho[p, q]:
                            hc += 1
                    if 3 * hc > 2 * n:
                        for v in range(n):
                            counts[v] = 0
                        minheard = n + 1
                        for q in range(n):
                            if new_ho[p, q]:
                                c = x[r, q]
                                counts[c] += 1
                                if c < minheard:
                                    minheard = c
                        top = 0
                        for v in range(n):
                            if counts[v] > top:
                                top = counts[v]
                        winner = 0
                        for q in range(n):
                            if new_ho[p, q] and counts[x[r, q]] == top:
                                winner = x[r, q]
                                break
                        if hc - top <= n // 3:
                            newx[p] = winner
                        else:
                            newx[p] = minheard
                        if 3 * top > 2 * n and decision_code[r, p] < 0:
                            decision_code[r, p] = winner
                            decision_round[r, p] = rnd
                    else:
                        newx[p] = x[r, p]
                for p in range(n):
                    x[r, p] = newx[p]
                for p in range(n):
                    for q in range(n):
                        listen[r, p, q] = True
                        known[r, p, q] = p == q
            rounds_executed[r] = rnd
            messages_sent[r] += n * n
            messages_delivered[r] += delivered


# --------------------------------------------------------------------------- #
# jitted twins (numba present) -- same code objects, compiled
# --------------------------------------------------------------------------- #

if NUMBA is not None:
    _counter_units_jit = NUMBA.njit(cache=True)(_counter_units_core)
    _otr_chunk_jit = NUMBA.njit(cache=True)(_otr_chunk)
    _uv_chunk_jit = NUMBA.njit(cache=True)(_uv_chunk)
    _lv_chunk_jit = NUMBA.njit(cache=True)(_lv_chunk)
    _translation_chunk_jit = NUMBA.njit(cache=True)(_translation_chunk)
else:
    _counter_units_jit = None
    _otr_chunk_jit = None
    _uv_chunk_jit = None
    _lv_chunk_jit = None
    _translation_chunk_jit = None


# --------------------------------------------------------------------------- #
# chunk runners: extract the batch kernel's state arrays, dispatch a core
# --------------------------------------------------------------------------- #


def _run_one_third_rule(kernel, compiled, words, word_of, bitmask, base_round,
                        full_horizon, scope, active, rounds_executed,
                        messages_sent, messages_delivered):
    core = _otr_chunk_jit if compiled else _otr_chunk
    core(words, word_of, bitmask, base_round, full_horizon, scope, active,
         kernel.x, kernel.decision_code, kernel.decision_round,
         rounds_executed, messages_sent, messages_delivered)


def _run_uniform_voting(kernel, compiled, words, word_of, bitmask, base_round,
                        full_horizon, scope, active, rounds_executed,
                        messages_sent, messages_delivered):
    core = _uv_chunk_jit if compiled else _uv_chunk
    core(words, word_of, bitmask, base_round, full_horizon, scope, active,
         kernel.x, kernel.vote, kernel.decision_code, kernel.decision_round,
         rounds_executed, messages_sent, messages_delivered)


def _run_last_voting(kernel, compiled, words, word_of, bitmask, base_round,
                     full_horizon, scope, active, rounds_executed,
                     messages_sent, messages_delivered):
    core = _lv_chunk_jit if compiled else _lv_chunk
    core(words, word_of, bitmask, base_round, full_horizon, scope, active,
         kernel.x, kernel.timestamp, kernel.vote, kernel.commit, kernel.ready,
         kernel.rank_of_code, kernel.code_at_rank, kernel.ROUNDS_PER_PHASE,
         kernel.decision_code, kernel.decision_round,
         rounds_executed, messages_sent, messages_delivered)


def _run_translation(kernel, compiled, words, word_of, bitmask, base_round,
                     full_horizon, scope, active, rounds_executed,
                     messages_sent, messages_delivered):
    core = _translation_chunk_jit if compiled else _translation_chunk
    inner = kernel._inner
    core(words, word_of, bitmask, base_round, full_horizon, scope, active,
         kernel.listen, kernel.known, kernel.f, kernel.rounds_per_macro,
         inner.x, inner.decision_code, inner.decision_round,
         rounds_executed, messages_sent, messages_delivered)


# --------------------------------------------------------------------------- #
# the compiled kernel registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompiledKernel:
    """One compiled dual: which batch kernel it shadows, and how to run it.

    *parity_test* names the pytest node that pins this dual's bit-identity
    against the numpy and scalar paths -- audited (file must exist, node
    named) by the ``repro.lint`` rule REP106, so a compiled kernel cannot
    be registered without its parity evidence.
    """

    algorithm_class: Type[Any]
    batch_kernel_class: Type[BatchKernel]
    parity_test: str
    runner: Callable[..., None]


_COMPILED: Dict[Type[BatchKernel], CompiledKernel] = {}


def register_compiled_kernel(spec: CompiledKernel) -> CompiledKernel:
    """Register *spec* as the compiled dual of its batch kernel class."""
    _COMPILED[spec.batch_kernel_class] = spec
    return spec


def compiled_kernel_for(kernel_class: Type[BatchKernel]) -> Optional[CompiledKernel]:
    """The compiled dual of a batch kernel class, or None.

    Exact class match only, for the same reason as
    :func:`repro.algorithms.batched.batch_kernel_for`: a subclass may have
    overridden ``step``, and silently running the base core would break
    bit-identity.
    """
    return _COMPILED.get(kernel_class)


_PARITY_TESTS = "tests/compiled/test_compiled_parity.py"

register_compiled_kernel(CompiledKernel(
    algorithm_class=OneThirdRule,
    batch_kernel_class=BatchOneThirdRule,
    parity_test=_PARITY_TESTS + "::test_classic_grid_parity",
    runner=_run_one_third_rule,
))
register_compiled_kernel(CompiledKernel(
    algorithm_class=UniformVoting,
    batch_kernel_class=BatchUniformVoting,
    parity_test=_PARITY_TESTS + "::test_classic_grid_parity",
    runner=_run_uniform_voting,
))
register_compiled_kernel(CompiledKernel(
    algorithm_class=LastVoting,
    batch_kernel_class=BatchLastVoting,
    parity_test=_PARITY_TESTS + "::test_classic_grid_parity",
    runner=_run_last_voting,
))
register_compiled_kernel(CompiledKernel(
    algorithm_class=KernelToUniformTranslation,
    batch_kernel_class=BatchTranslationKernel,
    parity_test=_PARITY_TESTS + "::test_translation_parity",
    runner=_run_translation,
))


__all__ = [
    "CompiledKernel",
    "compiled_kernel_for",
    "counter_units",
    "register_compiled_kernel",
]
