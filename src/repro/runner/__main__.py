"""Command-line sweep executor: ``python -m repro.runner``.

Runs a (scenario × fault-model × seed) grid, prints a fixed-width report
and optionally writes the machine-readable JSON summary consumed by CI::

    python -m repro.runner \
        --scenarios ho-stack chandra-toueg \
        --fault-models fault-free crash-stop \
        --seeds 0 1 --workers 2 --json sweep.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .registry import REGISTRY
from .sweep import _resolve_workers, build_grid, run_sweep


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run a (scenario x fault-model x seed) sweep grid.",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        help="scenario names (default: every registered scenario)",
    )
    parser.add_argument(
        "--fault-models",
        nargs="+",
        default=["fault-free", "crash-stop", "crash-recovery", "lossy"],
        help="fault models to sweep (default: all four)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="seeds to sweep (default: 0)",
    )
    parser.add_argument("--n", type=int, default=4, help="system size (default: 4)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker processes (default: 1 = inline)",
    )
    parser.add_argument("--json", default=None, help="write the JSON summary here")
    parser.add_argument(
        "--csv", default=None, help="write one CSV row per run here"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered scenarios and measurements, then exit",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-run progress lines"
    )
    args = parser.parse_args(argv)

    if args.list:
        print("scenarios:")
        for name in REGISTRY.scenario_names():
            print(f"  {name}")
        print("measurements:")
        for name in REGISTRY.measurement_names():
            print(f"  {name}")
        return 0

    known = REGISTRY.scenario_names()
    scenarios = args.scenarios if args.scenarios else known
    unknown = [name for name in scenarios if name not in known]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    specs = build_grid(scenarios, args.fault_models, args.seeds, n=args.n)
    workers = _resolve_workers(args.workers, len(specs))
    print(
        f"sweep: {len(scenarios)} scenario(s) x {len(args.fault_models)} fault "
        f"model(s) x {len(args.seeds)} seed(s) = {len(specs)} runs "
        f"({workers} worker(s))"
    )

    on_record = None
    if not args.quiet:
        on_record = lambda record: print(f"  done {record.row()}")  # noqa: E731

    result = run_sweep(specs, workers=workers, on_record=on_record)

    print()
    for line in result.report_lines():
        print(line)
    print(f"\nwall time: {result.wall_seconds:.2f}s with {result.workers} worker(s)")

    if args.json:
        result.write_json(args.json)
        print(f"JSON summary written to {args.json}")

    if args.csv:
        result.write_csv(args.csv)
        print(f"CSV records written to {args.csv}")

    errors = sum(1 for record in result.records if record.error)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
