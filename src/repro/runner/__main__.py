"""Command-line sweep executor: ``python -m repro.runner``.

Runs a (scenario × fault-model × size × seed) grid, prints a fixed-width
report and optionally writes machine-readable outputs: the JSON summary
consumed by CI, a CSV of the per-run records, and a streamed JSONL file
(one line per finished run) that a killed grid can be resumed from::

    python -m repro.runner \
        --scenarios ho-stack chandra-toueg \
        --fault-models fault-free crash-stop \
        --seeds 0 1 --ns 4 8 --workers 2 \
        --jsonl sweep.jsonl --json sweep.json

    # the box died mid-grid?  completed cells are skipped:
    python -m repro.runner ... --jsonl sweep.jsonl --resume-from sweep.jsonl

Both grid axes are validated against the registry up front -- a typo in a
scenario *or fault-model* name exits with code 2 and the known list,
instead of silently turning every cell into an errored run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from ..predicates import MONITOR_NAMES, canonical_predicate_name
from .registry import REGISTRY
from .sweep import BACKEND_CHOICES, JsonlSink, _resolve_workers, build_grid, run_sweep


def _parse_params(entries: Optional[Sequence[str]]) -> Dict[str, object]:
    """Parse repeated ``--param key=value`` flags (values as JSON, else str)."""
    params: Dict[str, object] = {}
    for entry in entries or ():
        key, separator, raw = entry.partition("=")
        if not separator or not key:
            raise ValueError(f"--param expects key=value, got {entry!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run a (scenario x fault-model x size x seed) sweep grid.",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        help="scenario names (default: every registered scenario)",
    )
    parser.add_argument(
        "--fault-models",
        nargs="+",
        default=["fault-free", "crash-stop", "crash-recovery", "lossy"],
        help="fault models to sweep (default: all four)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="seeds to sweep (default: 0)",
    )
    parser.add_argument("--n", type=int, default=4, help="system size (default: 4)")
    parser.add_argument(
        "--ns",
        nargs="+",
        type=int,
        default=None,
        help="sweep several system sizes (overrides --n), e.g. --ns 4 8 16",
    )
    parser.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="extra scenario parameter (repeatable); VALUE is parsed as JSON "
        "when possible, e.g. --param rounds=120 --param churn=0.5",
    )
    parser.add_argument(
        "--predicates",
        nargs="+",
        default=None,
        metavar="NAME",
        help="attach streaming predicate monitors to every run (names may be "
        "space- or comma-separated, e.g. --predicates p_otr,p_su,p_k); "
        "reports land in the per-run 'predicates' field of every sink",
    )
    parser.add_argument(
        "--stop-after-held",
        type=int,
        default=None,
        metavar="K",
        help="stop each run once a monitored predicate's good condition held "
        "for K consecutive rounds (requires --predicates)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="R",
        help="batch each grid cell over R consecutive seeds (seed .. seed+R-1), "
        "scheduled as one replica batch instead of R independent runs; records "
        "then carry per-replica outcomes and per-cell aggregates",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="execution backend for batched cells: 'compiled' = the fused "
        "multi-round JIT loop (numba when available, with an automatic "
        "per-cell batch fallback), 'batch' = the vectorized lockstep-replica "
        "engine (numpy when available, with an automatic per-cell scalar "
        "fallback), 'auto' = compiled when numba is importable else batch, "
        "'super' = pack the whole grid into one cross-cell lockstep run "
        "(single process), 'scalar' = the reference loop (default: auto; "
        "only meaningful with --replicas)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker processes (default: 1 = inline)",
    )
    parser.add_argument("--json", default=None, help="write the JSON summary here")
    parser.add_argument(
        "--csv", default=None, help="write one CSV row per run here"
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        help="stream one JSON line per finished run here (flushed per run, "
        "so a killed grid can be resumed)",
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        help="JSONL file of a previous run of this grid; completed cells are "
        "skipped (pair with --jsonl on the same path to keep one file)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered scenarios, fault models and measurements, then exit",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-run progress lines"
    )
    args = parser.parse_args(argv)

    if args.list:
        monitorable = set(REGISTRY.monitorable_scenario_names())
        batchable = set(REGISTRY.batchable_scenario_names())
        print("scenarios:")
        for name in REGISTRY.scenario_names():
            tags = [tag for tag, hit in (("monitorable", name in monitorable),
                                         ("batchable", name in batchable)) if hit]
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            print(f"  {name}{suffix}")
        print("fault models:")
        for name in REGISTRY.fault_model_names():
            print(f"  {name}")
        print("predicates (for --predicates, on [monitorable] scenarios):")
        for name in MONITOR_NAMES:
            print(f"  {name}")
        print("measurements:")
        for name in REGISTRY.measurement_names():
            print(f"  {name}")
        return 0

    known = REGISTRY.scenario_names()
    scenarios = args.scenarios if args.scenarios else known
    unknown = [name for name in scenarios if name not in known]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    known_fault_models = REGISTRY.fault_model_names()
    unknown = [name for name in args.fault_models if name not in known_fault_models]
    if unknown:
        print(
            f"error: unknown fault model(s) {', '.join(unknown)}; "
            f"known: {', '.join(known_fault_models)}",
            file=sys.stderr,
        )
        return 2

    try:
        params = _parse_params(args.param)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.replicas is not None and args.replicas < 1:
        print(f"error: --replicas must be at least 1, got {args.replicas}", file=sys.stderr)
        return 2

    if args.backend == "super" and args.workers > 1:
        print(
            "error: --backend super is single-process by design (the whole "
            "grid is one schedulable unit); drop --workers or use --backend batch",
            file=sys.stderr,
        )
        return 2

    if args.stop_after_held is not None and not args.predicates:
        print("error: --stop-after-held requires --predicates", file=sys.stderr)
        return 2
    if args.stop_after_held is not None and args.stop_after_held < 1:
        print(
            f"error: --stop-after-held must be at least 1, got {args.stop_after_held}",
            file=sys.stderr,
        )
        return 2
    if args.predicates:
        raw_names = [name for entry in args.predicates for name in entry.split(",") if name]
        try:
            predicate_names = tuple(canonical_predicate_name(name) for name in raw_names)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        unmonitorable = [
            name for name in scenarios if not REGISTRY.scenario_is_monitorable(name)
        ]
        if unmonitorable:
            print(
                f"error: --predicates requires monitorable scenarios; "
                f"{', '.join(unmonitorable)} run(s) without a heard-of collection. "
                f"Monitorable: {', '.join(REGISTRY.monitorable_scenario_names())}",
                file=sys.stderr,
            )
            return 2
        params["predicates"] = predicate_names
        if args.stop_after_held is not None:
            params["stop_after_held"] = args.stop_after_held

    sizes = args.ns if args.ns else [args.n]
    specs = build_grid(scenarios, args.fault_models, args.seeds, ns=sizes, **params)
    workers = _resolve_workers(args.workers, len(specs))
    batched = (
        f" x {args.replicas} replica(s) [{args.backend} backend]"
        if args.replicas is not None
        else ""
    )
    print(
        f"sweep: {len(scenarios)} scenario(s) x {len(args.fault_models)} fault "
        f"model(s) x {len(sizes)} size(s) x {len(args.seeds)} base seed(s)"
        f"{batched} = {len(specs)} cell(s) ({workers} worker(s))"
    )

    on_record = None
    if not args.quiet:
        on_record = lambda record: print(f"  done {record.row()}")  # noqa: E731

    sinks = []
    if args.jsonl:
        # realpath, not abspath: opening the resume file in "w" mode through
        # a symlink/alias would truncate it before the resume records load.
        append = args.resume_from is not None and os.path.realpath(
            args.resume_from
        ) == os.path.realpath(args.jsonl)
        sinks.append(JsonlSink(args.jsonl, append=append))

    result = run_sweep(
        specs,
        workers=workers,
        on_record=on_record,
        sinks=sinks,
        resume_from=args.resume_from,
        replicas=args.replicas,
        backend=args.backend,
    )

    print()
    for line in result.report_lines():
        print(line)
    resumed = f", {result.resumed} cell(s) resumed" if result.resumed else ""
    print(
        f"\nwall time: {result.wall_seconds:.2f}s with {result.workers} "
        f"worker(s){resumed}"
    )

    if args.json:
        result.write_json(args.json)
        print(f"JSON summary written to {args.json}")
    if args.jsonl:
        print(f"JSONL records streamed to {args.jsonl}")
    if args.csv:
        result.write_csv(args.csv)
        print(f"CSV records written to {args.csv}")

    errors = sum(1 for record in result.records if record.error)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
