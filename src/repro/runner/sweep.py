"""The multi-run experiment harness: (scenario × fault-model × n × seed) sweeps.

One simulation run is cheap; the interesting questions -- solve rates under
a fault model, latency distributions across seeds, bound tightness across
system sizes -- need grids of runs.  This module executes such grids, in
parallel worker processes when asked to, and aggregates the streamed-back
per-run metrics deterministically:

* :func:`build_grid` expands (scenarios × fault-models × sizes × param-sets
  × seeds) into :class:`RunSpec` entries;
* :func:`run_sweep` executes the specs (inline, or in a ``multiprocessing``
  pool), streaming one :class:`RunRecord` per finished run into any number
  of :class:`RecordSink` consumers;
* :class:`JsonlSink` persists one JSON line per finished run, flushed as
  records stream back, and ``run_sweep(..., resume_from=path)`` reloads
  such a file to skip the cells a killed grid already completed;
* :class:`SweepResult` holds the records in grid order and computes
  seed-stable aggregates plus a machine-readable JSON summary
  (``schema: repro-sweep/2``) for benchmark trajectories in CI.

Wire discipline: parallel workers return a slim, picklable
:class:`RunRecord` -- the full ``ScenarioResult`` (which may carry an
entire round trace) stays in the worker unless the caller opts in with
``keep_results=True``.  Inline execution (``workers <= 1``) always keeps
the in-process result attached, so consumers such as
:func:`repro.workloads.compare_stacks` work unchanged.

Determinism: every run is fully determined by its spec (the simulators are
deterministic per seed), records are re-ordered into grid order regardless
of worker completion order, and aggregates never include wall-clock times
-- so the same grid always yields byte-identical aggregates, whether it ran
serially, in parallel, or resumed from a partial JSONL file.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from .registry import REGISTRY

#: JSON schema tag of the sweep summary (v4: batched cells -- a per-run
#: ``replicas`` payload carrying per-replica outcomes and per-cell
#: aggregates, plus per-group across-replica dispersion; v3 added per-run
#: ``predicates`` and per-group predicate aggregates; v2 per-run ``params``,
#: per-group ``n``, error-free ``solve_rate`` denominators and ``resumed``).
#: v2/v3 JSONL files resume into v4 sweeps unchanged -- the cell identity of
#: non-batched cells is byte-identical, and batched cells extend it with the
#: replica count only.
SCHEMA = "repro-sweep/4"


def spec_key(
    scenario: str,
    fault_model: str,
    n: int,
    seed: int,
    params: Iterable[Tuple[str, Any]] = (),
    replicas: Optional[int] = None,
) -> str:
    """The canonical identity of one grid cell, as a compact JSON string.

    Includes the extra params (cells differing only in params are distinct
    cells) and is stable across a JSON round trip, so records reloaded from
    a JSONL file match the specs that produced them.  Batched cells append
    their replica count (a batched cell and a single run at the same base
    seed are different experiments); the execution backend is deliberately
    *not* part of the identity -- backends are bit-identical, so a resumed
    grid may finish on a different backend than it started on.
    """
    identity: List[Any] = [scenario, fault_model, int(n), int(seed), dict(params)]
    if replicas is not None:
        identity.append(int(replicas))
    return json.dumps(
        identity,
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep grid: a scenario under one fault model and seed.

    With *replicas* set, the cell covers the R consecutive seeds
    ``seed .. seed + replicas - 1`` and is executed as one replica batch
    (through the scenario's registered batch runner on the requested
    execution *backend*, or as R scalar runs when none is registered or
    ``backend="scalar"``); the record then carries per-replica outcomes.
    """

    scenario: str
    fault_model: str
    seed: int
    n: int = 4
    #: extra keyword arguments for the scenario runner, stored as a sorted
    #: tuple of pairs so the spec stays hashable and picklable.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: number of replicas of a batched cell; None = a plain single run.
    replicas: Optional[int] = None
    #: execution backend of a batched cell: "auto", "batch" or "scalar".
    backend: str = "auto"

    @classmethod
    def make(
        cls, scenario: str, fault_model: str, seed: int, n: int = 4, **params: Any
    ) -> "RunSpec":
        return cls(
            scenario=scenario,
            fault_model=fault_model,
            seed=seed,
            n=n,
            params=tuple(sorted(params.items())),
        )

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key(self) -> Tuple[str, str, int, int]:
        return (self.scenario, self.fault_model, self.n, self.seed)

    @property
    def cell_key(self) -> str:
        """The resume-matching identity of this cell (includes params)."""
        return spec_key(
            self.scenario, self.fault_model, self.n, self.seed, self.params,
            replicas=self.replicas,
        )


@dataclass(frozen=True)
class RunRecord:
    """The streamed-back outcome of one run (metrics flattened for JSON).

    This is the *wire record*: everything in it is picklable and
    JSON-serialisable, so it crosses process boundaries and restarts
    cheaply.  The full in-process ``ScenarioResult`` rides along only in
    :attr:`result`, which never crosses the worker pool by default.
    """

    scenario: str
    fault_model: str
    seed: int
    n: int
    solved: bool
    safe: bool
    terminated: bool
    decided_processes: int
    scope_size: int
    first_decision_time: Optional[float]
    last_decision_time: Optional[float]
    messages_sent: int
    wall_seconds: float
    params: Tuple[Tuple[str, Any], ...] = ()
    error: Optional[str] = None
    #: streaming predicate-monitor reports of a monitored run: one JSON
    #: report dict per predicate name (see
    #: :class:`repro.predicates.reports.PredicateReport`), None when the
    #: run monitored nothing.  Reports are tiny, so -- unlike traces --
    #: they ride the wire record across worker pools and into JSONL/CSV.
    predicates: Optional[Dict[str, Any]] = None
    #: batched-cell payload: ``{"count", "backend", "outcomes", "aggregates"}``
    #: with one flat outcome dict per replica (seeds ``seed .. seed+count-1``)
    #: and the per-cell aggregates; None for plain single-run cells.  The
    #: record's top-level fields then summarise the whole cell (solved/safe/
    #: terminated are conjunctions over non-errored replicas, counters are
    #: sums, decision times the min/max across replicas).
    replicas: Optional[Dict[str, Any]] = None
    #: the full ScenarioResult (verdict + metrics); carried for in-process
    #: consumers such as ``compare_stacks``, excluded from the JSON summary
    #: and stripped before a parallel worker returns unless the sweep was
    #: started with ``keep_results=True``.
    result: Any = field(default=None, compare=False, repr=False)

    @property
    def cell_key(self) -> str:
        """The resume-matching identity of the cell this record came from."""
        count = self.replicas.get("count") if self.replicas else None
        return spec_key(
            self.scenario, self.fault_model, self.n, self.seed, self.params,
            replicas=count,
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """The per-run entry of the JSON summary (wall time included, result not)."""
        return {
            "scenario": self.scenario,
            "fault_model": self.fault_model,
            "seed": self.seed,
            "n": self.n,
            "params": dict(self.params),
            "solved": self.solved,
            "safe": self.safe,
            "terminated": self.terminated,
            "decided_processes": self.decided_processes,
            "scope_size": self.scope_size,
            "first_decision_time": self.first_decision_time,
            "last_decision_time": self.last_decision_time,
            "messages_sent": self.messages_sent,
            "wall_seconds": round(self.wall_seconds, 6),
            "error": self.error,
            "predicates": self.predicates,
            "replicas": self.replicas,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a wire record from one JSONL line / JSON-summary entry."""
        params = payload.get("params") or {}
        return cls(
            scenario=payload["scenario"],
            fault_model=payload["fault_model"],
            seed=payload["seed"],
            n=payload["n"],
            solved=payload["solved"],
            safe=payload["safe"],
            terminated=payload["terminated"],
            decided_processes=payload["decided_processes"],
            scope_size=payload["scope_size"],
            first_decision_time=payload["first_decision_time"],
            last_decision_time=payload["last_decision_time"],
            messages_sent=payload["messages_sent"],
            wall_seconds=payload["wall_seconds"],
            params=tuple(sorted(params.items())),
            error=payload.get("error"),
            predicates=payload.get("predicates"),
            replicas=payload.get("replicas"),
        )

    def row(self) -> str:
        """A fixed-width text row for reports."""
        latency = (
            "   -  "
            if self.last_decision_time is None
            else f"{self.last_decision_time:6.1f}"
        )
        status = f"ERROR: {self.error}" if self.error else (
            f"safe={'yes' if self.safe else 'NO '} "
            f"terminated={'yes' if self.terminated else 'no '} "
            f"latency={latency} messages={self.messages_sent}"
        )
        if self.replicas and not self.error:
            aggregates = self.replicas.get("aggregates") or {}
            rate = aggregates.get("solve_rate")
            status += (
                f" replicas={self.replicas.get('count')}"
                f" solve_rate={'-' if rate is None else format(rate, '.2f')}"
            )
        return (
            f"{self.scenario:<16} {self.fault_model:<15} n={self.n:<3} "
            f"seed={self.seed:<3} {status}"
        )


def execute_run(spec: RunSpec) -> RunRecord:
    """Run one spec and flatten its outcome (top-level: picklable for workers).

    Batched specs (``spec.replicas``) execute the whole cell -- all R seeds
    -- in one call, through the scenario's batch runner when one is
    registered and the backend allows it, else as R scalar runs.
    """
    if spec.replicas is not None:
        return _execute_batch_cell(spec)
    runner = REGISTRY.scenario(spec.scenario)
    started = time.perf_counter()
    try:
        result = runner(spec.fault_model, n=spec.n, seed=spec.seed, **spec.kwargs)
    except Exception as exc:  # noqa: BLE001 - a failed cell must not kill the sweep
        return RunRecord(
            scenario=spec.scenario,
            fault_model=spec.fault_model,
            seed=spec.seed,
            n=spec.n,
            solved=False,
            safe=False,
            terminated=False,
            decided_processes=0,
            scope_size=0,
            first_decision_time=None,
            last_decision_time=None,
            messages_sent=0,
            wall_seconds=time.perf_counter() - started,
            params=spec.params,
            error=f"{type(exc).__name__}: {exc}",
        )
    wall = time.perf_counter() - started
    metrics = result.metrics
    extra = getattr(result, "extra", None)
    predicates = extra.get("predicate_reports") if isinstance(extra, Mapping) else None
    return RunRecord(
        scenario=spec.scenario,
        fault_model=spec.fault_model,
        seed=spec.seed,
        n=spec.n,
        solved=result.solved,
        safe=result.safe,
        terminated=result.verdict.termination,
        decided_processes=metrics.decided_processes,
        scope_size=metrics.scope_size,
        first_decision_time=metrics.first_decision_time,
        last_decision_time=metrics.last_decision_time,
        messages_sent=metrics.messages_sent,
        wall_seconds=wall,
        params=spec.params,
        predicates=predicates,
        result=result,
    )


#: The flat per-replica outcome keys batched cells carry (a projection of
#: the plain wire-record fields, minus the cell-level ones).
REPLICA_OUTCOME_FIELDS = (
    "seed",
    "solved",
    "safe",
    "terminated",
    "decided_processes",
    "scope_size",
    "first_decision_time",
    "last_decision_time",
    "messages_sent",
    "error",
    "predicates",
)


def _replica_outcome_from_record(record: RunRecord) -> Dict[str, Any]:
    """Project a plain single-run record onto the per-replica outcome shape."""
    payload = record.to_json_dict()
    return {key: payload[key] for key in REPLICA_OUTCOME_FIELDS}


def _mean_std_min_max(values: Sequence[float]) -> Dict[str, Optional[float]]:
    """Dispersion summary of a sample (population std; None-safe on empty)."""
    if not values:
        return {"mean": None, "std": None, "min": None, "max": None}
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return {
        "mean": mean,
        "std": variance ** 0.5,
        "min": min(values),
        "max": max(values),
    }


def _cell_aggregates(outcomes: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Per-cell (across-replica) aggregates of one batched cell."""
    ok = [outcome for outcome in outcomes if not outcome.get("error")]
    solved = sum(1 for outcome in ok if outcome["solved"])
    latencies = [
        outcome["last_decision_time"]
        for outcome in ok
        if outcome["last_decision_time"] is not None
    ]
    aggregates: Dict[str, Any] = {
        "replicas": len(outcomes),
        "errors": len(outcomes) - len(ok),
        "solved": solved,
        "solve_rate": (solved / len(ok)) if ok else None,
        "all_safe": all(outcome["safe"] for outcome in ok) if ok else None,
        "last_decision_time": _mean_std_min_max(latencies),
    }
    first_holds: Dict[str, List[int]] = {}
    for outcome in ok:
        for name, report in (outcome.get("predicates") or {}).items():
            value = report.get("first_hold_round")
            if value is not None:
                first_holds.setdefault(name, []).append(value)
    if first_holds:
        aggregates["first_hold_round"] = {
            name: _mean_std_min_max(values) for name, values in sorted(first_holds.items())
        }
    return aggregates


def _effective_backend(requested: str) -> str:
    """What actually executed a batched cell, for the record's diagnostics.

    The backend registry holds one backend instance per process, and the
    batch backend records per ``run`` whether vectorisation engaged
    (``last_fallback_reason``); reading it right after the batch runner
    returned turns the requested name into the effective one, e.g.
    ``"batch"`` or ``"batch:scalar-fallback (numpy unavailable ...)"``.
    Diagnostic only -- outcomes are backend-independent by contract, so the
    field is deliberately outside the cell identity.
    """
    try:
        from ..rounds.backend import get_backend

        backend = get_backend(requested)
    except Exception:  # noqa: BLE001 - diagnostics must never fail a cell
        return requested
    reason = getattr(backend, "last_fallback_reason", None)
    if reason is None:
        return backend.name
    # The super backend degrades to the per-cell *batch* path (which may
    # still vectorise); the compiled backend degrades to the numpy batch
    # path; the batch backend degrades to the scalar loop.
    name = getattr(backend, "name", "")
    if name == "super":
        kind = "cell-fallback"
    elif name == "compiled":
        kind = "batch-fallback"
    else:
        kind = "scalar-fallback"
    return f"{backend.name}:{kind} ({reason})"


def _execute_batch_cell(spec: RunSpec) -> RunRecord:
    """Execute one batched cell: R replica seeds as one unit of work.

    Routes through the scenario's registered batch runner (one vectorised
    batch on the requested backend) unless ``backend="scalar"`` or no
    runner exists -- then the cell is R scalar ``execute_run`` calls, which
    is the reference the batch path is pinned against.  Either way the cell
    yields a single wire record whose ``replicas`` payload carries the
    per-replica outcomes and the per-cell aggregates.
    """
    count = spec.replicas or 1
    seeds = list(range(spec.seed, spec.seed + count))
    batch_runner = (
        REGISTRY.batch_runner(spec.scenario) if spec.backend != "scalar" else None
    )
    # A scenario may alias the generic backend choices onto its own
    # execution backends (step-path scenarios: "batch" -> "step-batch").
    resolved_backend = REGISTRY.resolve_backend(spec.scenario, spec.backend)
    started = time.perf_counter()
    error: Optional[str] = None
    outcomes: List[Dict[str, Any]] = []
    if batch_runner is not None:
        try:
            outcomes = list(
                batch_runner(
                    spec.fault_model, n=spec.n, seeds=seeds, backend=resolved_backend,
                    **spec.kwargs,
                )
            )
            # Only a completed run can tell whether vectorisation engaged;
            # an exception may have fired before any backend executed, so
            # the label then stays the requested name.
            used_backend = _effective_backend(resolved_backend)
        except Exception as exc:  # noqa: BLE001 - a failed cell must not kill the sweep
            error = f"{type(exc).__name__}: {exc}"
            used_backend = resolved_backend
    else:
        used_backend = "scalar-loop"
        for seed in seeds:
            record = execute_run(replace(spec, seed=seed, replicas=None))
            outcomes.append(_replica_outcome_from_record(record))
    wall = time.perf_counter() - started
    return _cell_record(spec, outcomes, used_backend, wall, error)


def _cell_record(
    spec: RunSpec,
    outcomes: List[Dict[str, Any]],
    used_backend: str,
    wall: float,
    error: Optional[str],
) -> RunRecord:
    """Assemble a batched cell's wire record from its per-replica outcomes."""
    count = spec.replicas or 1
    ok = [outcome for outcome in outcomes if not outcome.get("error")]
    replicas_payload = {
        "count": count,
        "backend": used_backend,
        "outcomes": outcomes,
        "aggregates": _cell_aggregates(outcomes) if outcomes else {},
    }
    if error is None and outcomes and not ok:
        # Every replica errored: surface it at cell level so a resumed grid
        # retries the whole cell (partial replica errors stay cell-internal).
        error = "all replicas errored: " + str(outcomes[0].get("error"))
    first_times = [o["first_decision_time"] for o in ok if o["first_decision_time"] is not None]
    last_times = [o["last_decision_time"] for o in ok if o["last_decision_time"] is not None]
    return RunRecord(
        scenario=spec.scenario,
        fault_model=spec.fault_model,
        seed=spec.seed,
        n=spec.n,
        solved=bool(ok) and all(o["solved"] for o in ok),
        safe=bool(ok) and all(o["safe"] for o in ok),
        terminated=bool(ok) and all(o["terminated"] for o in ok),
        decided_processes=sum(o["decided_processes"] for o in ok),
        scope_size=max((o["scope_size"] for o in ok), default=0),
        first_decision_time=min(first_times) if first_times else None,
        last_decision_time=max(last_times) if last_times else None,
        messages_sent=sum(o["messages_sent"] for o in ok),
        wall_seconds=wall,
        params=spec.params,
        error=error,
        replicas=replicas_payload,
    )


def _execute_indexed(job: Tuple[int, RunSpec, bool]) -> Tuple[int, "RunRecord"]:
    """Run one grid cell, tagged with its grid position (picklable for workers).

    Unless the sweep opted into ``keep_results``, the in-process result is
    stripped *inside the worker*, so only the slim wire record is pickled
    back through the pool.
    """
    index, spec, keep_results = job
    record = execute_run(spec)
    if not keep_results and record.result is not None:
        record = replace(record, result=None)
    return index, record


# --------------------------------------------------------------------------- #
# record sinks: streamed persistence of finished runs
# --------------------------------------------------------------------------- #


@runtime_checkable
class RecordSink(Protocol):
    """Where :func:`run_sweep` streams finished runs, one record at a time.

    ``write`` is called in completion order as each record arrives (only
    for freshly executed cells -- cells reloaded via ``resume_from`` are
    already persisted); ``close`` is called exactly once when the sweep
    finishes, even on error.
    """

    def write(self, record: RunRecord) -> None: ...

    def close(self) -> None: ...


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


class JsonlSink:
    """One JSON line per finished run, flushed immediately.

    The flush-per-record discipline is what makes sweeps resumable: when a
    10k-cell grid is killed, every completed cell is already on disk, and
    ``run_sweep(..., resume_from=path)`` picks up where it died.  Pass
    ``append=True`` when resuming into the same file.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        _ensure_parent(path)
        self.path = path
        self._handle = open(path, "a" if append else "w", encoding="utf-8")
        if append and self._handle.tell() > 0:
            # A killed writer can leave a torn final line without a newline;
            # appending straight after it would glue the next record onto the
            # torn fragment and lose both.  Start appends on a fresh line.
            with open(path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                if probe.read(1) != b"\n":
                    self._handle.write("\n")
                    self._handle.flush()

    def write(self, record: RunRecord) -> None:
        # default=str matches spec_key/_csv_row: non-JSON-native params
        # (frozensets, tuples of tuples, ...) must not abort a running sweep.
        self._handle.write(
            json.dumps(record.to_json_dict(), separators=(",", ":"), default=str)
        )
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def _csv_row(record: RunRecord) -> Dict[str, Any]:
    """A CSV-safe projection of one record (params/predicates/replicas JSON-encoded)."""
    row = record.to_json_dict()
    row["params"] = json.dumps(row["params"], sort_keys=True, default=str)
    for key in ("predicates", "replicas"):
        row[key] = (
            "" if row[key] is None
            else json.dumps(row[key], sort_keys=True, default=str)
        )
    return row


class CsvSink:
    """One CSV row per finished run (header first, rows flushed as written)."""

    def __init__(self, path: str) -> None:
        _ensure_parent(path)
        self.path = path
        self._handle = open(path, "w", encoding="utf-8", newline="")
        self._writer = csv.DictWriter(self._handle, fieldnames=SweepResult.CSV_FIELDS)
        self._writer.writeheader()
        self._handle.flush()

    def write(self, record: RunRecord) -> None:
        self._writer.writerow(_csv_row(record))
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class JsonSummarySink:
    """Buffer records and write the full JSON summary on close.

    A summary holds aggregates over the whole grid, so it cannot be flushed
    per record; records are sorted into a canonical order on close, making
    the output independent of worker completion order.  When the sweep was
    resumed, the sink only sees the freshly executed cells -- prefer
    :meth:`SweepResult.write_json` for a summary of the merged grid.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._records: List[RunRecord] = []
        self._closed = False

    def write(self, record: RunRecord) -> None:
        self._records.append(record)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        records = sorted(self._records, key=lambda r: (r.scenario, r.fault_model, r.cell_key))
        SweepResult(records=records, workers=0).write_json(self.path)


def load_jsonl_records(path: str) -> List[RunRecord]:
    """Reload the wire records persisted by a :class:`JsonlSink`.

    Tolerates the torn final line a killed process can leave behind (and
    blank lines); later lines win when a cell appears twice, so appended
    resume runs supersede nothing and plain re-runs supersede everything.
    """
    records: Dict[str, RunRecord] = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a killed run
            if not isinstance(payload, dict) or "scenario" not in payload:
                continue
            record = RunRecord.from_json_dict(payload)
            records[record.cell_key] = record
    return list(records.values())


def _replica_entries(record: RunRecord) -> List[Mapping[str, Any]]:
    """The per-replica outcome views of a record (a plain record is one replica).

    Group aggregates are computed at *replica* granularity so that batched
    and unbatched sweeps of the same seeds aggregate identically.  A batched
    cell that failed before producing outcomes (its batch runner raised)
    counts as one errored entry per replica, so the error is as visible in
    the aggregates as R failed scalar runs would be.
    """
    if record.replicas:
        outcomes = list(record.replicas.get("outcomes") or ())
        if outcomes:
            return outcomes
        count = int(record.replicas.get("count") or 1)
        return [
            {
                "seed": record.seed + i,
                "solved": False,
                "safe": False,
                "terminated": False,
                "decided_processes": 0,
                "scope_size": 0,
                "first_decision_time": None,
                "last_decision_time": None,
                "messages_sent": 0,
                "error": record.error or "batched cell produced no outcomes",
                "predicates": None,
            }
            for i in range(count)
        ]
    return [_replica_outcome_from_record(record)]


def _aggregate_predicates(entries: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-predicate aggregates over the monitored replicas of one group.

    Only non-errored replicas carrying reports contribute; like every other
    aggregate, the numbers depend solely on deterministic run outcomes, so
    resumed grids reproduce them byte-identically.  Besides the means, the
    first-hold rounds carry their across-replica dispersion (std/min/max),
    so batched cells report spread, not just centre.
    """
    reported = [entry for entry in entries if entry.get("predicates")]
    if not reported:
        return {}
    summary: Dict[str, Dict[str, Any]] = {}
    names = sorted({name for entry in reported for name in entry["predicates"]})
    for name in names:
        reports = [
            entry["predicates"][name] for entry in reported if name in entry["predicates"]
        ]
        held = sum(1 for report in reports if report.get("holds"))
        first_holds = [
            report["first_hold_round"]
            for report in reports
            if report.get("first_hold_round") is not None
        ]
        satisfactions = [
            report["satisfaction"] for report in reports
            if report.get("satisfaction") is not None
        ]
        dispersion = _mean_std_min_max(first_holds)
        summary[name] = {
            "runs": len(reports),
            "held": held,
            "hold_rate": held / len(reports),
            "mean_first_hold_round": dispersion["mean"],
            "std_first_hold_round": dispersion["std"],
            "min_first_hold_round": dispersion["min"],
            "max_first_hold_round": dispersion["max"],
            "mean_satisfaction": (
                sum(satisfactions) / len(satisfactions) if satisfactions else None
            ),
            "max_longest_good_run": max(
                (report.get("longest_good_run", 0) for report in reports), default=0
            ),
        }
    return summary


@dataclass
class SweepResult:
    """All records of one sweep, in grid order, plus deterministic aggregates."""

    records: List[RunRecord]
    workers: int = 1
    wall_seconds: float = 0.0
    #: how many cells were reloaded from a ``resume_from`` file instead of
    #: being executed.
    resumed: int = 0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def record_for(
        self, scenario: str, fault_model: str, seed: int, n: Optional[int] = None
    ) -> RunRecord:
        """The record of one grid cell (raises when absent or ambiguous).

        *n* may be omitted on single-size grids; on multi-size grids an
        ambiguous lookup raises instead of silently picking one.
        """
        matches = [
            record
            for record in self.records
            if (record.scenario, record.fault_model, record.seed)
            == (scenario, fault_model, seed)
            and (n is None or record.n == n)
        ]
        if not matches:
            raise KeyError(f"no record for {(scenario, fault_model, seed, n)}")
        if len(matches) > 1:
            sizes = sorted(record.n for record in matches)
            raise KeyError(
                f"{len(matches)} records match {(scenario, fault_model, seed)}; "
                f"pass n= to disambiguate (sizes: {sizes})"
            )
        return matches[0]

    def aggregate(self) -> Dict[str, Dict[str, Any]]:
        """Seed-stable aggregates per ``(scenario, fault_model, n)`` group.

        Wall-clock times are deliberately excluded: aggregates depend only on
        the (deterministic) simulation outcomes, so re-running the same grid
        -- serially, in parallel, or resumed from a partial JSONL -- yields
        identical aggregates.  Aggregation happens at *replica* granularity:
        a plain record is one replica, a batched cell contributes every
        replica outcome it carries, so batched and unbatched sweeps of the
        same seeds aggregate identically.  ``solve_rate`` is computed over
        non-errored replicas only (``None`` when every one errored): an
        infrastructure failure must not deflate the scientific solve rate.
        Groups containing batched cells additionally report the
        across-replica dispersion (std/min/max of per-cell solve rates and,
        via the predicate aggregates, of first-hold rounds).  Group keys
        gain an ``/n=<size>`` suffix exactly when the grid spans several
        system sizes.
        """
        groups: Dict[Tuple[str, str, int], List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(
                (record.scenario, record.fault_model, record.n), []
            ).append(record)
        multi_n = len({n for (_, _, n) in groups}) > 1
        aggregates: Dict[str, Dict[str, Any]] = {}
        for (scenario, fault_model, n) in sorted(groups):
            group = sorted(
                groups[(scenario, fault_model, n)], key=lambda r: (r.seed, r.cell_key)
            )
            entries = [entry for record in group for entry in _replica_entries(record)]
            ok = [entry for entry in entries if not entry.get("error")]
            solved = sum(1 for entry in ok if entry["solved"])
            latencies = [
                entry["last_decision_time"]
                for entry in entries
                if entry["last_decision_time"] is not None
            ]
            name = f"{scenario}/{fault_model}" + (f"/n={n}" if multi_n else "")
            aggregates[name] = {
                "runs": len(group),
                "n": n,
                "errors": len(entries) - len(ok),
                "solved": solved,
                "solve_rate": (solved / len(ok)) if ok else None,
                "all_safe": all(entry["safe"] for entry in ok) if ok else None,
                "mean_last_decision_time": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
                "max_last_decision_time": max(latencies) if latencies else None,
                "total_messages_sent": sum(entry["messages_sent"] for entry in entries),
                "seeds": [r.seed for r in group],
            }
            if any(record.replicas for record in group):
                # Per-cell solve rates (a plain record is a 0/1 cell), with
                # their spread: batched groups report dispersion, not just
                # the pooled mean.
                cell_rates = []
                for record in group:
                    cell_ok = [
                        entry for entry in _replica_entries(record)
                        if not entry.get("error")
                    ]
                    if cell_ok:
                        cell_rates.append(
                            sum(1 for entry in cell_ok if entry["solved"]) / len(cell_ok)
                        )
                aggregates[name]["replicas"] = len(entries)
                aggregates[name]["replica_dispersion"] = {
                    "cells": len(group),
                    "solve_rate": _mean_std_min_max(cell_rates),
                }
            predicate_summary = _aggregate_predicates(ok)
            if predicate_summary:
                aggregates[name]["predicates"] = predicate_summary
        return aggregates

    def to_json(self) -> Dict[str, Any]:
        """The machine-readable summary (``schema: repro-sweep/2``)."""
        return {
            "schema": SCHEMA,
            "grid_size": len(self.records),
            "workers": self.workers,
            "resumed": self.resumed,
            "wall_seconds": round(self.wall_seconds, 6),
            "runs": [record.to_json_dict() for record in self.records],
            "aggregates": self.aggregate(),
        }

    def write_json(self, path: str) -> None:
        """Write the JSON summary to *path* (creating parent directories)."""
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False, default=str)
            handle.write("\n")

    #: column order of the CSV export (the per-run JSON fields).
    CSV_FIELDS = (
        "scenario",
        "fault_model",
        "seed",
        "n",
        "params",
        "solved",
        "safe",
        "terminated",
        "decided_processes",
        "scope_size",
        "first_decision_time",
        "last_decision_time",
        "messages_sent",
        "wall_seconds",
        "error",
        "predicates",
        "replicas",
    )

    def write_csv(self, path: str) -> None:
        """Write one CSV row per run to *path* (creating parent directories).

        Columns match the per-run entries of the JSON summary, in grid
        order, so spreadsheet/pandas consumers get the same records CI gets
        (``params`` is JSON-encoded into its cell).
        """
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.CSV_FIELDS)
            writer.writeheader()
            for record in self.records:
                writer.writerow(_csv_row(record))

    def report_lines(self) -> List[str]:
        """Fixed-width rows plus aggregate lines, for text reports."""
        lines = [record.row() for record in self.records]
        lines.append("-" * 78)
        for name, aggregate in self.aggregate().items():
            mean_latency = aggregate["mean_last_decision_time"]
            total = aggregate.get("replicas", aggregate["runs"])
            lines.append(
                f"{name:<32} runs={aggregate['runs']:<3} "
                f"solved={aggregate['solved']}/{total} "
                f"all_safe={aggregate['all_safe']!s:<5} "
                "mean_latency="
                f"{'-' if mean_latency is None else format(mean_latency, '.1f')}"
            )
        return lines


def build_grid(
    scenarios: Sequence[str],
    fault_models: Sequence[str],
    seeds: Sequence[int],
    n: int = 4,
    ns: Optional[Sequence[int]] = None,
    param_sets: Optional[Sequence[Mapping[str, Any]]] = None,
    **params: Any,
) -> List[RunSpec]:
    """Expand a (scenario × fault-model × size × param-set × seed) grid.

    *ns* sweeps several system sizes (overriding the single *n*); each
    mapping in *param_sets* is overlaid on the shared ``**params`` and
    becomes one slice of the grid -- so bound-tightness experiments can
    cross sizes and knob settings in one grid.  With neither given, the
    classic single-axis (scenario × fault-model × seed) grid comes back
    unchanged.
    """
    sizes = list(ns) if ns is not None else [n]
    if not sizes:
        raise ValueError("at least one system size is required")
    overlays = [{}] if param_sets is None else [dict(entry) for entry in param_sets]
    if not overlays:
        raise ValueError("param_sets, when given, must not be empty")
    return [
        RunSpec.make(scenario, fault_model, seed, n=size, **{**params, **overlay})
        for scenario in scenarios
        for fault_model in fault_models
        for size in sizes
        for overlay in overlays
        for seed in seeds
    ]


def _resolve_workers(workers: Optional[int], jobs: int) -> int:
    # Never more workers than jobs, but deliberately no cpu_count() clamp:
    # a requested pool is honoured even on small machines (the workers are
    # processes; oversubscription just time-slices).
    if workers is None or workers <= 1:
        return 1
    return max(1, min(workers, jobs))


#: Execution-backend names a sweep accepts for batched cells.
BACKEND_CHOICES = ("auto", "batch", "compiled", "scalar", "super")


def _execute_super_grid(
    cells: Sequence[Tuple[int, RunSpec]],
    emit: Callable[[RunRecord], None],
    slots: List[Optional[RunRecord]],
) -> List[Tuple[int, RunSpec]]:
    """Run every cell with a registered builder as ONE cross-cell unit.

    Builds a :class:`~repro.rounds.backend.CellPlan` per eligible cell,
    hands all their batches to the super backend's ``run_batches`` in a
    single call -- the whole grid becomes the schedulable unit -- and emits
    one wire record per cell.  The grid's wall clock is split evenly across
    its cells (per-cell timing is meaningless inside one lockstep loop).
    Returns the cells that must take the ordinary per-cell path (no
    builder, or the cross-cell run failed).
    """
    from ..rounds.backend import get_backend

    leftover: List[Tuple[int, RunSpec]] = []
    plans: List[Tuple[int, RunSpec, Any]] = []
    started = time.perf_counter()
    for index, spec in cells:
        builder = REGISTRY.batch_builder(spec.scenario)
        if builder is None:
            leftover.append((index, spec))
            continue
        seeds = list(range(spec.seed, spec.seed + (spec.replicas or 1)))
        try:
            plan = builder(spec.fault_model, n=spec.n, seeds=seeds, **spec.kwargs)
        except Exception as exc:  # noqa: BLE001 - a bad cell must not kill the grid
            record = _cell_record(
                spec, [], "super", 0.0, f"{type(exc).__name__}: {exc}"
            )
            emit(record)
            slots[index] = record
            continue
        plans.append((index, spec, plan))
    if not plans:
        return leftover

    backend = get_backend("super")
    try:
        results = backend.run_batches([plan.batch for _, _, plan in plans])
    except Exception:  # noqa: BLE001 - degrade to the per-cell path wholesale
        return leftover + [(index, spec) for index, spec, _ in plans]
    per_cell_wall = (time.perf_counter() - started) / len(plans)
    reasons = backend.last_fallback_reasons
    for slot, (index, spec, plan) in enumerate(plans):
        reason = reasons.get(slot)
        used = "super" if reason is None else f"super:cell-fallback ({reason})"
        error: Optional[str] = None
        outcomes: List[Dict[str, Any]] = []
        try:
            outcomes = list(plan.finalize(results[slot]))
        except Exception as exc:  # noqa: BLE001
            error = f"{type(exc).__name__}: {exc}"
        record = _cell_record(spec, outcomes, used, per_cell_wall, error)
        emit(record)
        slots[index] = record
    return leftover


def run_sweep(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
    keep_results: bool = False,
    sinks: Sequence[RecordSink] = (),
    resume_from: Optional[str] = None,
    replicas: Optional[int] = None,
    backend: str = "auto",
) -> SweepResult:
    """Execute *specs*, optionally in parallel worker processes.

    ``workers`` <= 1 (or ``None``) runs inline; larger values fan the grid
    out over a ``multiprocessing`` pool.  In the parallel path only the slim
    wire record is pickled back -- the full ``ScenarioResult`` stays in the
    worker unless ``keep_results=True`` (inline runs always keep it, so
    in-process consumers are unaffected by the wire discipline).

    ``replicas=R`` turns every spec into a *batched cell* covering the R
    consecutive seeds ``spec.seed .. spec.seed + R - 1``, scheduled as one
    unit of work instead of R independent runs: scenarios with a registered
    batch runner execute the whole cell on the requested execution
    *backend* (``auto``/``batch`` = the vectorised lockstep-replica engine
    with its automatic scalar fallback; ``scalar`` = R reference runs), and
    every cell's record carries the per-replica outcomes next to the cell
    aggregates.  Specs that already carry ``replicas`` are left untouched.

    ``backend="super"`` goes one step further: every cell whose scenario
    registered a :class:`~repro.rounds.backend.CellPlan` builder is packed,
    together with all the others, into ONE cross-cell lockstep engine run
    -- the whole grid becomes the schedulable unit.  Super-batching is
    single-process by design, so combining it with ``workers > 1`` raises
    ``ValueError``; cells the grid path cannot take (no builder, monitored
    or fingerprinted runs, numpy unavailable) fall back to the per-cell
    batch machinery and are labelled ``super:cell-fallback (reason)``.

    *on_record* is invoked and every sink in *sinks* written as each run's
    record streams back (in completion order); sinks are closed when the
    sweep finishes, even on error.  *resume_from* names a JSONL file
    written by a previous (possibly killed) run of the same grid: cells
    whose key appears there with a non-error outcome are reloaded instead
    of re-executed (errored cells are retried), and neither *on_record* nor
    the sinks see the reloaded records -- they are already persisted.

    The returned :class:`SweepResult` always holds the records in grid
    order, so results are independent of worker scheduling and of how often
    the grid was killed and resumed.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}")
    if backend == "super" and workers is not None and workers > 1:
        raise ValueError(
            "backend='super' is single-process by design: the whole grid is "
            "one schedulable unit, so workers must be 1 (or None)"
        )
    specs = list(specs)
    if replicas is not None:
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        specs = [
            spec if spec.replicas is not None
            else replace(spec, replicas=replicas, backend=backend)
            for spec in specs
        ]
    started = time.perf_counter()

    slots: List[Optional[RunRecord]] = [None] * len(specs)
    if resume_from and os.path.exists(resume_from):
        completed = {
            record.cell_key: record
            for record in load_jsonl_records(resume_from)
            if record.error is None
        }
        for index, spec in enumerate(specs):
            record = completed.get(spec.cell_key)
            if record is not None:
                slots[index] = record
    resumed = sum(1 for slot in slots if slot is not None)

    pending = [(index, spec) for index, spec in enumerate(specs) if slots[index] is None]
    worker_count = _resolve_workers(workers, len(pending))
    sinks = list(sinks)

    def emit(record: RunRecord) -> None:
        # Sinks first: a record is persisted before any consumer callback
        # sees it, so a crashing callback never loses completed work.
        for sink in sinks:
            sink.write(record)
        if on_record is not None:
            on_record(record)

    try:
        super_cells = [
            (index, spec)
            for index, spec in pending
            if spec.replicas is not None and spec.backend == "super"
        ]
        if super_cells:
            # Cells the grid path cannot take (no CellPlan builder, or the
            # cross-cell run itself failed) fall through to the normal
            # per-cell machinery below, where the super backend still
            # handles each batch individually.
            _execute_super_grid(super_cells, emit, slots)
            pending = [
                (index, spec) for index, spec in pending if slots[index] is None
            ]
            worker_count = _resolve_workers(workers, len(pending))
        if worker_count == 1:
            for index, spec in pending:
                record = execute_run(spec)
                emit(record)
                slots[index] = record
        else:
            # Index by grid position, not by spec fields: the position is
            # unambiguous even for specs differing only in extra params.
            jobs = [(index, spec, keep_results) for index, spec in pending]
            with multiprocessing.Pool(processes=worker_count) as pool:
                for index, record in pool.imap_unordered(
                    _execute_indexed, jobs, chunksize=1
                ):
                    emit(record)
                    slots[index] = record
    finally:
        for sink in sinks:
            sink.close()

    records = [record for record in slots if record is not None]
    assert len(records) == len(specs)
    return SweepResult(
        records=records,
        workers=worker_count,
        wall_seconds=time.perf_counter() - started,
        resumed=resumed,
    )


def run_one(
    scenario: str, fault_model: str, seed: int = 0, n: int = 4, **params: Any
) -> Any:
    """Run a single registered scenario and return its full ScenarioResult."""
    return REGISTRY.scenario(scenario)(fault_model, n=n, seed=seed, **params)


# --------------------------------------------------------------------------- #
# measurement sweeps (bound-vs-measured experiments)
# --------------------------------------------------------------------------- #


def execute_measurement(job: Tuple[str, Tuple[Tuple[str, Any], ...]]) -> Any:
    """Run one measurement job (top-level: picklable for workers)."""
    name, params = job
    return REGISTRY.measurement(name)(**dict(params))


def run_measurement_sweep(
    name: str,
    param_sets: Iterable[Mapping[str, Any]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run measurement *name* over *param_sets*; results come back in input order.

    Entries whose measurement returns a sequence (e.g. ``measure_corollary4``)
    are kept as returned; callers flatten if needed.
    """
    jobs = [(name, tuple(sorted(params.items()))) for params in param_sets]
    worker_count = _resolve_workers(workers, len(jobs))
    if worker_count == 1:
        return [execute_measurement(job) for job in jobs]
    with multiprocessing.Pool(processes=worker_count) as pool:
        return pool.map(execute_measurement, jobs, chunksize=1)


__all__ = [
    "SCHEMA",
    "BACKEND_CHOICES",
    "REPLICA_OUTCOME_FIELDS",
    "RunSpec",
    "RunRecord",
    "SweepResult",
    "RecordSink",
    "JsonlSink",
    "CsvSink",
    "JsonSummarySink",
    "load_jsonl_records",
    "spec_key",
    "build_grid",
    "run_sweep",
    "run_one",
    "execute_run",
    "run_measurement_sweep",
    "execute_measurement",
]
