"""The multi-run experiment harness: (scenario × seed × fault-model) sweeps.

One simulation run is cheap; the interesting questions -- solve rates under
a fault model, latency distributions across seeds, bound tightness across
system sizes -- need grids of runs.  This module executes such grids, in
parallel worker processes when asked to, and aggregates the streamed-back
per-run metrics deterministically:

* :func:`build_grid` expands (scenarios × fault-models × seeds) into
  :class:`RunSpec` entries;
* :func:`run_sweep` executes the specs (inline, or in a ``multiprocessing``
  pool), streaming one :class:`RunRecord` per finished run;
* :class:`SweepResult` holds the records in grid order and computes
  seed-stable aggregates plus a machine-readable JSON summary
  (``schema: repro-sweep/1``) for benchmark trajectories in CI.

Determinism: every run is fully determined by its spec (the simulators are
deterministic per seed), records are re-ordered into grid order regardless
of worker completion order, and aggregates never include wall-clock times
-- so the same grid always yields byte-identical aggregates.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .registry import REGISTRY

#: JSON schema tag of the sweep summary.
SCHEMA = "repro-sweep/1"


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep grid: a scenario under one fault model and seed."""

    scenario: str
    fault_model: str
    seed: int
    n: int = 4
    #: extra keyword arguments for the scenario runner, stored as a sorted
    #: tuple of pairs so the spec stays hashable and picklable.
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, scenario: str, fault_model: str, seed: int, n: int = 4, **params: Any
    ) -> "RunSpec":
        return cls(
            scenario=scenario,
            fault_model=fault_model,
            seed=seed,
            n=n,
            params=tuple(sorted(params.items())),
        )

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key(self) -> Tuple[str, str, int, int]:
        return (self.scenario, self.fault_model, self.n, self.seed)


@dataclass(frozen=True)
class RunRecord:
    """The streamed-back outcome of one run (metrics flattened for JSON)."""

    scenario: str
    fault_model: str
    seed: int
    n: int
    solved: bool
    safe: bool
    terminated: bool
    decided_processes: int
    scope_size: int
    first_decision_time: Optional[float]
    last_decision_time: Optional[float]
    messages_sent: int
    wall_seconds: float
    error: Optional[str] = None
    #: the full ScenarioResult (verdict + metrics); carried for in-process
    #: consumers such as ``compare_stacks``, excluded from the JSON summary.
    result: Any = field(default=None, compare=False, repr=False)

    def to_json_dict(self) -> Dict[str, Any]:
        """The per-run entry of the JSON summary (wall time included, result not)."""
        return {
            "scenario": self.scenario,
            "fault_model": self.fault_model,
            "seed": self.seed,
            "n": self.n,
            "solved": self.solved,
            "safe": self.safe,
            "terminated": self.terminated,
            "decided_processes": self.decided_processes,
            "scope_size": self.scope_size,
            "first_decision_time": self.first_decision_time,
            "last_decision_time": self.last_decision_time,
            "messages_sent": self.messages_sent,
            "wall_seconds": round(self.wall_seconds, 6),
            "error": self.error,
        }

    def row(self) -> str:
        """A fixed-width text row for reports."""
        latency = (
            "   -  "
            if self.last_decision_time is None
            else f"{self.last_decision_time:6.1f}"
        )
        status = f"ERROR: {self.error}" if self.error else (
            f"safe={'yes' if self.safe else 'NO '} "
            f"terminated={'yes' if self.terminated else 'no '} "
            f"latency={latency} messages={self.messages_sent}"
        )
        return (
            f"{self.scenario:<16} {self.fault_model:<15} n={self.n:<3} "
            f"seed={self.seed:<3} {status}"
        )


def execute_run(spec: RunSpec) -> RunRecord:
    """Run one spec and flatten its outcome (top-level: picklable for workers)."""
    runner = REGISTRY.scenario(spec.scenario)
    started = time.perf_counter()
    try:
        result = runner(spec.fault_model, n=spec.n, seed=spec.seed, **spec.kwargs)
    except Exception as exc:  # noqa: BLE001 - a failed cell must not kill the sweep
        return RunRecord(
            scenario=spec.scenario,
            fault_model=spec.fault_model,
            seed=spec.seed,
            n=spec.n,
            solved=False,
            safe=False,
            terminated=False,
            decided_processes=0,
            scope_size=0,
            first_decision_time=None,
            last_decision_time=None,
            messages_sent=0,
            wall_seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    wall = time.perf_counter() - started
    metrics = result.metrics
    return RunRecord(
        scenario=spec.scenario,
        fault_model=spec.fault_model,
        seed=spec.seed,
        n=spec.n,
        solved=result.solved,
        safe=result.safe,
        terminated=result.verdict.termination,
        decided_processes=metrics.decided_processes,
        scope_size=metrics.scope_size,
        first_decision_time=metrics.first_decision_time,
        last_decision_time=metrics.last_decision_time,
        messages_sent=metrics.messages_sent,
        wall_seconds=wall,
        result=result,
    )


def _execute_indexed(job: Tuple[int, RunSpec]) -> Tuple[int, "RunRecord"]:
    """Run one grid cell, tagged with its grid position (picklable for workers)."""
    index, spec = job
    return index, execute_run(spec)


@dataclass
class SweepResult:
    """All records of one sweep, in grid order, plus deterministic aggregates."""

    records: List[RunRecord]
    workers: int = 1
    wall_seconds: float = 0.0

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def record_for(
        self, scenario: str, fault_model: str, seed: int, n: Optional[int] = None
    ) -> RunRecord:
        """The record of one grid cell (raises when absent or ambiguous).

        *n* may be omitted on single-size grids; on multi-size grids an
        ambiguous lookup raises instead of silently picking one.
        """
        matches = [
            record
            for record in self.records
            if (record.scenario, record.fault_model, record.seed)
            == (scenario, fault_model, seed)
            and (n is None or record.n == n)
        ]
        if not matches:
            raise KeyError(f"no record for {(scenario, fault_model, seed, n)}")
        if len(matches) > 1:
            sizes = sorted(record.n for record in matches)
            raise KeyError(
                f"{len(matches)} records match {(scenario, fault_model, seed)}; "
                f"pass n= to disambiguate (sizes: {sizes})"
            )
        return matches[0]

    def aggregate(self) -> Dict[str, Dict[str, Any]]:
        """Seed-stable aggregates per ``scenario/fault_model`` group.

        Wall-clock times are deliberately excluded: aggregates depend only on
        the (deterministic) simulation outcomes, so re-running the same grid
        -- serially or in parallel -- yields identical aggregates.
        """
        groups: Dict[Tuple[str, str], List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault((record.scenario, record.fault_model), []).append(record)
        aggregates: Dict[str, Dict[str, Any]] = {}
        for (scenario, fault_model) in sorted(groups):
            group = sorted(groups[(scenario, fault_model)], key=lambda r: (r.n, r.seed))
            latencies = [
                r.last_decision_time for r in group if r.last_decision_time is not None
            ]
            aggregates[f"{scenario}/{fault_model}"] = {
                "runs": len(group),
                "errors": sum(1 for r in group if r.error),
                "solved": sum(1 for r in group if r.solved),
                "solve_rate": sum(1 for r in group if r.solved) / len(group),
                "all_safe": (
                    all(r.safe for r in group if not r.error)
                    if any(not r.error for r in group)
                    else None
                ),
                "mean_last_decision_time": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
                "max_last_decision_time": max(latencies) if latencies else None,
                "total_messages_sent": sum(r.messages_sent for r in group),
                "seeds": [r.seed for r in group],
            }
        return aggregates

    def to_json(self) -> Dict[str, Any]:
        """The machine-readable summary (``schema: repro-sweep/1``)."""
        return {
            "schema": SCHEMA,
            "grid_size": len(self.records),
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "runs": [record.to_json_dict() for record in self.records],
            "aggregates": self.aggregate(),
        }

    def write_json(self, path: str) -> None:
        """Write the JSON summary to *path* (creating parent directories)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    #: column order of the CSV export (the per-run JSON fields).
    CSV_FIELDS = (
        "scenario",
        "fault_model",
        "seed",
        "n",
        "solved",
        "safe",
        "terminated",
        "decided_processes",
        "scope_size",
        "first_decision_time",
        "last_decision_time",
        "messages_sent",
        "wall_seconds",
        "error",
    )

    def write_csv(self, path: str) -> None:
        """Write one CSV row per run to *path* (creating parent directories).

        Columns match the per-run entries of the JSON summary, in grid
        order, so spreadsheet/pandas consumers get the same records CI gets.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Columns come from the records themselves so the CSV can never
        # drift out of sync with the JSON export; CSV_FIELDS documents the
        # expected order and covers the empty-sweep header.
        fields = (
            list(self.records[0].to_json_dict()) if self.records else list(self.CSV_FIELDS)
        )
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                writer.writerow(record.to_json_dict())

    def report_lines(self) -> List[str]:
        """Fixed-width rows plus aggregate lines, for text reports."""
        lines = [record.row() for record in self.records]
        lines.append("-" * 78)
        for name, aggregate in self.aggregate().items():
            mean_latency = aggregate["mean_last_decision_time"]
            lines.append(
                f"{name:<32} runs={aggregate['runs']:<3} "
                f"solved={aggregate['solved']}/{aggregate['runs']} "
                f"all_safe={aggregate['all_safe']!s:<5} "
                "mean_latency="
                f"{'-' if mean_latency is None else format(mean_latency, '.1f')}"
            )
        return lines


def build_grid(
    scenarios: Sequence[str],
    fault_models: Sequence[str],
    seeds: Sequence[int],
    n: int = 4,
    **params: Any,
) -> List[RunSpec]:
    """Expand a (scenario × fault-model × seed) grid into run specs."""
    return [
        RunSpec.make(scenario, fault_model, seed, n=n, **params)
        for scenario in scenarios
        for fault_model in fault_models
        for seed in seeds
    ]


def _resolve_workers(workers: Optional[int], jobs: int) -> int:
    # Never more workers than jobs, but deliberately no cpu_count() clamp:
    # a requested pool is honoured even on small machines (the workers are
    # processes; oversubscription just time-slices).
    if workers is None or workers <= 1:
        return 1
    return max(1, min(workers, jobs))


def run_sweep(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> SweepResult:
    """Execute *specs*, optionally in parallel worker processes.

    ``workers`` <= 1 (or ``None``) runs inline; larger values fan the grid
    out over a ``multiprocessing`` pool.  *on_record* is invoked as each
    run's record streams back (in completion order); the returned
    :class:`SweepResult` always holds the records in grid order, so results
    are independent of worker scheduling.
    """
    specs = list(specs)
    worker_count = _resolve_workers(workers, len(specs))
    started = time.perf_counter()
    if worker_count == 1:
        records = []
        for spec in specs:
            record = execute_run(spec)
            if on_record is not None:
                on_record(record)
            records.append(record)
    else:
        # Index by grid position, not by spec fields: specs differing only in
        # extra params would collide on any field-derived key.
        slots: List[Optional[RunRecord]] = [None] * len(specs)
        with multiprocessing.Pool(processes=worker_count) as pool:
            for index, record in pool.imap_unordered(
                _execute_indexed, list(enumerate(specs)), chunksize=1
            ):
                if on_record is not None:
                    on_record(record)
                slots[index] = record
        records = [record for record in slots if record is not None]
        assert len(records) == len(specs)
    return SweepResult(
        records=records,
        workers=worker_count,
        wall_seconds=time.perf_counter() - started,
    )


def run_one(
    scenario: str, fault_model: str, seed: int = 0, n: int = 4, **params: Any
) -> Any:
    """Run a single registered scenario and return its full ScenarioResult."""
    return REGISTRY.scenario(scenario)(fault_model, n=n, seed=seed, **params)


# --------------------------------------------------------------------------- #
# measurement sweeps (bound-vs-measured experiments)
# --------------------------------------------------------------------------- #


def execute_measurement(job: Tuple[str, Tuple[Tuple[str, Any], ...]]) -> Any:
    """Run one measurement job (top-level: picklable for workers)."""
    name, params = job
    return REGISTRY.measurement(name)(**dict(params))


def run_measurement_sweep(
    name: str,
    param_sets: Iterable[Mapping[str, Any]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run measurement *name* over *param_sets*; results come back in input order.

    Entries whose measurement returns a sequence (e.g. ``measure_corollary4``)
    are kept as returned; callers flatten if needed.
    """
    jobs = [(name, tuple(sorted(params.items()))) for params in param_sets]
    worker_count = _resolve_workers(workers, len(jobs))
    if worker_count == 1:
        return [execute_measurement(job) for job in jobs]
    with multiprocessing.Pool(processes=worker_count) as pool:
        return pool.map(execute_measurement, jobs, chunksize=1)


__all__ = [
    "SCHEMA",
    "RunSpec",
    "RunRecord",
    "SweepResult",
    "build_grid",
    "run_sweep",
    "run_one",
    "execute_run",
    "run_measurement_sweep",
    "execute_measurement",
]
