"""repro.runner: the scenario registry and the parallel multi-run harness.

The runner turns single simulation runs into experiments:

* :mod:`repro.runner.registry` -- scenarios and measurements registered
  under picklable string names (populated by importing
  :mod:`repro.workloads`);
* :mod:`repro.runner.sweep` -- grid expansion, the (optionally
  ``multiprocessing``-parallel) sweep executor, deterministic aggregation
  and the machine-readable JSON summary;
* ``python -m repro.runner`` -- the command-line entry point used by CI to
  produce sweep summaries on every push.
"""

from .registry import REGISTRY, TaskRegistry
from .sweep import (
    SCHEMA,
    CsvSink,
    JsonlSink,
    JsonSummarySink,
    RecordSink,
    RunRecord,
    RunSpec,
    SweepResult,
    build_grid,
    load_jsonl_records,
    run_measurement_sweep,
    run_one,
    run_sweep,
)

__all__ = [
    "REGISTRY",
    "TaskRegistry",
    "SCHEMA",
    "RunSpec",
    "RunRecord",
    "SweepResult",
    "RecordSink",
    "JsonlSink",
    "CsvSink",
    "JsonSummarySink",
    "load_jsonl_records",
    "build_grid",
    "run_sweep",
    "run_one",
    "run_measurement_sweep",
]
