"""The scenario / measurement registry of the experiment runner.

Experiments are registered under string names so that the sweep executor
can address them from worker processes (a name pickles trivially; a
closure does not).  Two namespaces exist:

* *scenarios* -- end-to-end consensus runs, ``fn(fault_model, n=..., seed=...,
  **params) -> ScenarioResult`` (the three stacks of
  :mod:`repro.workloads.scenarios` register themselves here);
* *measurements* -- bound-vs-measured experiments, ``fn(**params) ->
  Measurement`` or a sequence thereof (the ``measure_*`` functions of
  :mod:`repro.workloads.measure` register themselves here).

A third, flat namespace lists the known *fault models* (the shared axis
every scenario accepts), so the CLI can validate a grid before spending
hours executing it.

The registry itself depends on nothing above the standard library, so the
import direction is strictly ``workloads -> runner.registry`` and worker
processes populate it by importing :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional


class TaskRegistry:
    """Name -> callable registries for scenarios and measurements."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Callable] = {}
        self._measurements: Dict[str, Callable] = {}
        self._fault_models: Dict[str, None] = {}
        self._monitorable: Dict[str, bool] = {}
        self._batch_runners: Dict[str, Callable] = {}
        self._batch_builders: Dict[str, Callable] = {}
        self._backend_aliases: Dict[str, Dict[str, str]] = {}
        self._populated = False

    # -- registration -------------------------------------------------- #

    def register_scenario(
        self,
        name: str,
        fn: Callable,
        *,
        monitorable: bool = False,
        batch_runner: Optional[Callable] = None,
        batch_builder: Optional[Callable] = None,
        backend_aliases: Optional[Mapping[str, str]] = None,
    ) -> Callable:
        """Register scenario *name*; returns *fn* so it can be used as a decorator.

        *monitorable* declares that the scenario accepts the
        ``predicates`` / ``stop_after_held`` keyword arguments and attaches
        streaming predicate monitors (DES-based baselines have no heard-of
        collection, so the CLI refuses ``--predicates`` for them up front).

        *batch_runner* declares the scenario batchable: a callable
        ``fn(fault_model, n=..., seeds=[...], backend=..., **params)``
        returning one flat per-replica outcome dict per seed, bit-identical
        to running the scalar scenario once per seed.  The sweep executor
        routes ``replicas=`` cells through it instead of R scalar runs.

        *batch_builder* additionally exposes the cell's construction as
        data: a callable ``fn(fault_model, n=..., seeds=[...], **params)``
        returning a :class:`~repro.rounds.backend.CellPlan` (the built
        :class:`~repro.rounds.backend.ReplicaBatch` plus the outcome
        flattener).  The super-batch sweep path uses it to pack *all* cells
        of a grid into one cross-cell engine run instead of executing them
        cell by cell.

        *backend_aliases* maps the sweep's generic backend choices
        (``auto``/``batch``/``compiled``/``super``/``scalar``) onto the
        scenario's own
        execution backends.  Step-path scenarios use it to route
        ``--backend batch`` to ``step-batch`` (and ``scalar`` to
        ``step-scalar``) without the sweep executor knowing what a step
        replica is; unmapped names pass through unchanged.
        """
        self._scenarios[name] = fn
        self._monitorable[name] = monitorable
        if batch_runner is not None:
            self._batch_runners[name] = batch_runner
        if batch_builder is not None:
            self._batch_builders[name] = batch_builder
        if backend_aliases is not None:
            self._backend_aliases[name] = dict(backend_aliases)
        return fn

    def register_measurement(self, name: str, fn: Callable) -> Callable:
        """Register measurement *name*; returns *fn* so it can be used as a decorator."""
        self._measurements[name] = fn
        return fn

    def register_fault_model(self, name: str) -> None:
        """Declare *name* a known fault model (the shared scenario axis)."""
        self._fault_models[name] = None

    # -- lookup -------------------------------------------------------- #

    def scenario(self, name: str) -> Callable:
        """The scenario runner registered under *name*."""
        self._ensure_populated()
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {self.scenario_names()}"
            ) from None

    def measurement(self, name: str) -> Callable:
        """The measurement function registered under *name*."""
        self._ensure_populated()
        try:
            return self._measurements[name]
        except KeyError:
            raise KeyError(
                f"unknown measurement {name!r}; known: {self.measurement_names()}"
            ) from None

    def scenario_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._scenarios)

    def measurement_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._measurements)

    def fault_model_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._fault_models)

    def scenario_is_monitorable(self, name: str) -> bool:
        """Whether scenario *name* supports streaming predicate monitors."""
        self._ensure_populated()
        return self._monitorable.get(name, False)

    def monitorable_scenario_names(self) -> List[str]:
        """The scenarios that accept ``predicates`` / ``stop_after_held``."""
        self._ensure_populated()
        return sorted(name for name, flag in self._monitorable.items() if flag)

    def batch_runner(self, name: str) -> Optional[Callable]:
        """The batch runner of scenario *name*, or None when not batchable."""
        self._ensure_populated()
        return self._batch_runners.get(name)

    def batchable_scenario_names(self) -> List[str]:
        """The scenarios with a registered batch runner (vectorisable cells)."""
        self._ensure_populated()
        return sorted(self._batch_runners)

    def batch_builder(self, name: str) -> Optional[Callable]:
        """The CellPlan builder of scenario *name*, or None (super-batch food)."""
        self._ensure_populated()
        return self._batch_builders.get(name)

    def resolve_backend(self, name: str, requested: str) -> str:
        """Scenario *name*'s execution backend for the sweep choice *requested*.

        Applies the scenario's registered backend aliases (step-path
        scenarios map the generic choices onto ``step-batch`` /
        ``step-scalar``); names without an alias pass through unchanged.
        """
        self._ensure_populated()
        return self._backend_aliases.get(name, {}).get(requested, requested)

    def _ensure_populated(self) -> None:
        """Import the workload modules whose import side-effect registers tasks.

        Lookups may happen in a fresh worker process where nothing has been
        imported yet; this makes name resolution self-contained.  A real
        flag, not an emptiness check: a caller registering its own scenario
        first must not suppress the workload import (it used to leave the
        fault-model namespace empty).
        """
        if not self._populated:
            self._populated = True
            import repro.workloads  # noqa: F401  (registers scenarios + measurements)


#: The process-wide registry the sweep executor resolves names against.
REGISTRY = TaskRegistry()


__all__ = ["TaskRegistry", "REGISTRY"]
