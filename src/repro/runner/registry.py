"""The scenario / measurement registry of the experiment runner.

Experiments are registered under string names so that the sweep executor
can address them from worker processes (a name pickles trivially; a
closure does not).  Two namespaces exist:

* *scenarios* -- end-to-end consensus runs, ``fn(fault_model, n=..., seed=...,
  **params) -> ScenarioResult`` (the three stacks of
  :mod:`repro.workloads.scenarios` register themselves here);
* *measurements* -- bound-vs-measured experiments, ``fn(**params) ->
  Measurement`` or a sequence thereof (the ``measure_*`` functions of
  :mod:`repro.workloads.measure` register themselves here).

A third, flat namespace lists the known *fault models* (the shared axis
every scenario accepts), so the CLI can validate a grid before spending
hours executing it.

The registry itself depends on nothing above the standard library, so the
import direction is strictly ``workloads -> runner.registry`` and worker
processes populate it by importing :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Callable, Dict, List


class TaskRegistry:
    """Name -> callable registries for scenarios and measurements."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Callable] = {}
        self._measurements: Dict[str, Callable] = {}
        self._fault_models: Dict[str, None] = {}

    # -- registration -------------------------------------------------- #

    def register_scenario(self, name: str, fn: Callable) -> Callable:
        """Register scenario *name*; returns *fn* so it can be used as a decorator."""
        self._scenarios[name] = fn
        return fn

    def register_measurement(self, name: str, fn: Callable) -> Callable:
        """Register measurement *name*; returns *fn* so it can be used as a decorator."""
        self._measurements[name] = fn
        return fn

    def register_fault_model(self, name: str) -> None:
        """Declare *name* a known fault model (the shared scenario axis)."""
        self._fault_models[name] = None

    # -- lookup -------------------------------------------------------- #

    def scenario(self, name: str) -> Callable:
        """The scenario runner registered under *name*."""
        self._ensure_populated()
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {self.scenario_names()}"
            ) from None

    def measurement(self, name: str) -> Callable:
        """The measurement function registered under *name*."""
        self._ensure_populated()
        try:
            return self._measurements[name]
        except KeyError:
            raise KeyError(
                f"unknown measurement {name!r}; known: {self.measurement_names()}"
            ) from None

    def scenario_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._scenarios)

    def measurement_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._measurements)

    def fault_model_names(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._fault_models)

    def _ensure_populated(self) -> None:
        """Import the workload modules whose import side-effect registers tasks.

        Lookups may happen in a fresh worker process where nothing has been
        imported yet; this makes name resolution self-contained.
        """
        if not self._scenarios:
            import repro.workloads  # noqa: F401  (registers scenarios + measurements)


#: The process-wide registry the sweep executor resolves names against.
REGISTRY = TaskRegistry()


__all__ = ["TaskRegistry", "REGISTRY"]
