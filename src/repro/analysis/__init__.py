"""Analysis layer: fault taxonomy, consensus checking and run metrics."""

from .consensus_check import ConsensusVerdict, DecidingTrace, check_consensus
from .metrics import (
    AlgorithmComplexity,
    GoodPeriodStats,
    RunMetrics,
    UnifiedTrace,
    algorithm_complexity_summary,
    good_period_stats,
    metrics_from_des,
    metrics_from_ho_trace,
    metrics_from_system_trace,
    metrics_from_trace,
)
from .taxonomy import (
    APPLICABILITY,
    FaultClass,
    FaultConfiguration,
    classify,
    communication_predicates_applicable,
    failure_detectors_applicable,
)

__all__ = [
    "ConsensusVerdict",
    "DecidingTrace",
    "check_consensus",
    "RunMetrics",
    "UnifiedTrace",
    "metrics_from_trace",
    "metrics_from_ho_trace",
    "metrics_from_system_trace",
    "metrics_from_des",
    "GoodPeriodStats",
    "good_period_stats",
    "AlgorithmComplexity",
    "algorithm_complexity_summary",
    "FaultClass",
    "FaultConfiguration",
    "classify",
    "APPLICABILITY",
    "failure_detectors_applicable",
    "communication_predicates_applicable",
]
