"""The alternative fault taxonomy of Section 2.2 (SP / ST / DP / DT).

The paper organises benign process faults along two axes:

* *permanent* (P) vs. *transient* (T) -- does a fault, once it hits a
  process, persist forever?
* *static* (S) vs. *dynamic* (D) -- can faults hit only a fixed subset of at
  most ``f < n`` processes, or any process?

yielding four classes: SP (crash-stop), ST (e.g. send/receive omissions on a
fixed subset, or crash-recovery where some processes never crash), DP
(everybody may fail permanently) and DT (everybody may fail transiently --
the class transmission faults capture uniformly).

This module classifies a concrete fault configuration -- a
:class:`~repro.sysmodel.faults.FaultSchedule` plus link-loss information --
into those classes, and states which approaches (failure detectors vs.
communication predicates) are applicable to each class.  Benchmark E9 uses
it to build the applicability matrix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet

from ..core.types import ProcessId
from ..sysmodel.faults import FaultKind, FaultSchedule


class FaultClass(enum.Enum):
    """The four classes of the Section 2.2 taxonomy, plus the fault-free case."""

    NONE = "fault-free"
    SP = "static-permanent"
    ST = "static-transient"
    DP = "dynamic-permanent"
    DT = "dynamic-transient"


@dataclass(frozen=True)
class FaultConfiguration:
    """A fault configuration to classify.

    * *schedule*: the timed crash / recovery events;
    * *lossy_links*: whether links may lose messages (a transient,
      transmission-level fault);
    * *omission_processes*: processes suffering send/receive omissions, if
      any (transient process faults);
    * *n*: system size.
    """

    n: int
    schedule: FaultSchedule
    lossy_links: bool = False
    omission_processes: FrozenSet[ProcessId] = frozenset()

    def crashed_processes(self) -> FrozenSet[ProcessId]:
        """Processes that crash at least once."""
        return frozenset(
            event.process
            for event in self.schedule.events
            if event.kind is FaultKind.CRASH
        )

    def recovering_processes(self) -> FrozenSet[ProcessId]:
        """Processes that recover at least once."""
        return frozenset(
            event.process
            for event in self.schedule.events
            if event.kind is FaultKind.RECOVER
        )


def classify(configuration: FaultConfiguration) -> FaultClass:
    """Classify a fault configuration into the Section 2.2 taxonomy.

    The classification follows the paper's reading:

    * no faults at all -> ``NONE``;
    * only permanent crashes of a strict subset -> ``SP`` (the crash-stop
      model);
    * transient faults (recoveries, omissions, link loss) confined to a
      strict subset of processes, with the rest fault-free -> ``ST``;
    * permanent crashes that may hit every process -> ``DP``;
    * transient faults that may hit every process (crash-recovery where
      everybody may crash, or link loss, which can deprive *any* process of
      *any* message) -> ``DT``.
    """
    faulty = (
        configuration.crashed_processes()
        | configuration.omission_processes
    )
    transient = (
        bool(configuration.recovering_processes())
        or bool(configuration.omission_processes)
        or configuration.lossy_links
    )
    if not faulty and not configuration.lossy_links:
        return FaultClass.NONE
    # Link loss is a transmission fault that can hit any process pair: dynamic.
    dynamic = configuration.lossy_links or len(faulty) >= configuration.n
    if transient:
        return FaultClass.DT if dynamic else FaultClass.ST
    return FaultClass.DP if dynamic else FaultClass.SP


#: Which abstractions handle which fault class (the argument of Sections 1-2).
#: Failure detectors assume permanent crash faults on a static subset (SP);
#: communication predicates handle every benign class uniformly because they
#: are stated over transmission faults.
APPLICABILITY: Dict[FaultClass, Dict[str, bool]] = {
    FaultClass.NONE: {"failure-detectors": True, "communication-predicates": True},
    FaultClass.SP: {"failure-detectors": True, "communication-predicates": True},
    FaultClass.ST: {"failure-detectors": False, "communication-predicates": True},
    FaultClass.DP: {"failure-detectors": False, "communication-predicates": True},
    FaultClass.DT: {"failure-detectors": False, "communication-predicates": True},
}


def failure_detectors_applicable(fault_class: FaultClass) -> bool:
    """Whether the classical ◇S failure-detector approach covers *fault_class*."""
    return APPLICABILITY[fault_class]["failure-detectors"]


def communication_predicates_applicable(fault_class: FaultClass) -> bool:
    """Whether the communication-predicate approach covers *fault_class*."""
    return APPLICABILITY[fault_class]["communication-predicates"]


__all__ = [
    "FaultClass",
    "FaultConfiguration",
    "classify",
    "APPLICABILITY",
    "failure_detectors_applicable",
    "communication_predicates_applicable",
]
