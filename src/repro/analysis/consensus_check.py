"""Checking the consensus specification (Section 3.1) on recorded runs.

Consensus is specified by three conditions:

* *Integrity*: any decision value is the initial value of some process;
* *Agreement*: no two processes decide differently;
* *Termination*: all processes (or, for restricted-scope predicates, all
  processes of the scope Pi0) eventually decide.

The checker works on both kinds of traces produced by the library: the
round-level :class:`~repro.core.types.RunTrace` of the HO machine, and the
step-level :class:`~repro.sysmodel.trace.SystemRunTrace` of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Protocol, Sequence

from ..core.types import ProcessId


class DecidingTrace(Protocol):
    """What the checker needs from a trace: who decided what.

    Both trace classes implement ``decision_values`` through the unified
    per-round record schema of :mod:`repro.rounds.record`, so the checker is
    agnostic about which execution layer produced the run.
    """

    def decision_values(self) -> Dict[ProcessId, Any]: ...


@dataclass(frozen=True)
class ConsensusVerdict:
    """The outcome of checking the consensus properties on one run."""

    integrity: bool
    agreement: bool
    termination: bool
    decisions: Mapping[ProcessId, Any]
    violations: Sequence[str] = ()

    @property
    def safe(self) -> bool:
        """Integrity and agreement together (the properties that must never break)."""
        return self.integrity and self.agreement

    @property
    def solved(self) -> bool:
        """All three conditions."""
        return self.safe and self.termination


def check_consensus(
    trace: DecidingTrace,
    initial_values: Sequence[Any] | Mapping[ProcessId, Any],
    scope: Optional[Iterable[ProcessId]] = None,
) -> ConsensusVerdict:
    """Check integrity, agreement and termination of a recorded run.

    *scope* is the set of processes required to decide (defaults to all);
    it corresponds to the Pi0 of restricted-scope predicates such as
    ``P_restr_otr`` (Theorem 2 only guarantees termination for Pi0).
    """
    if isinstance(initial_values, Mapping):
        values = dict(initial_values)
    else:
        values = dict(enumerate(initial_values))
    decisions = dict(trace.decision_values())
    violations: List[str] = []

    allowed = set(values.values())
    integrity = True
    for process, decision in decisions.items():
        if decision not in allowed:
            integrity = False
            violations.append(
                f"process {process} decided {decision!r}, which is not an initial value"
            )

    distinct = set(decisions.values())
    agreement = len(distinct) <= 1
    if not agreement:
        violations.append(f"processes decided different values: {sorted(map(repr, distinct))}")

    scope_set = set(values) if scope is None else set(scope)
    missing = scope_set - set(decisions)
    termination = not missing
    if missing:
        violations.append(f"processes {sorted(missing)} never decided")

    return ConsensusVerdict(
        integrity=integrity,
        agreement=agreement,
        termination=termination,
        decisions=decisions,
        violations=tuple(violations),
    )


__all__ = ["ConsensusVerdict", "DecidingTrace", "check_consensus"]
