"""Run metrics and structural algorithm-complexity metrics.

Two kinds of measurements back the benchmark reports:

* *run metrics* -- decision latency, rounds needed, messages exchanged --
  extracted from recorded traces (HO machine, step simulator or DES);
* *structural metrics* -- a quantitative rendering of the paper's Section 2
  argument that the crash-recovery failure-detector algorithm (Algorithm 6)
  is far more complex than the crash-stop one (Algorithm 5), while the HO
  algorithm (Algorithm 1) is reused verbatim across fault models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Protocol, Sequence, Union

from ..core.types import DecisionRecord, ProcessId
from ..des.simulator import EventSimulator
from ..predicates.reports import PredicateReport


class UnifiedTrace(Protocol):
    """What the metrics layer needs from a trace, regardless of its producer.

    Both :class:`repro.core.types.RunTrace` (round-level) and
    :class:`repro.sysmodel.trace.SystemRunTrace` (step-level) implement this:
    the unified per-round record schema of :mod:`repro.rounds.record` gives
    every executed round a decision slot and a time, so one metrics
    extractor serves both layers.
    """

    @property
    def n(self) -> int: ...

    @property
    def messages_sent(self) -> int: ...

    def decision_records(self) -> Dict[ProcessId, DecisionRecord]: ...


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one consensus run."""

    decided_processes: int
    scope_size: int
    unanimous: bool
    first_decision_time: Optional[float]
    last_decision_time: Optional[float]
    first_decision_round: Optional[int]
    last_decision_round: Optional[int]
    messages_sent: int

    @property
    def all_decided(self) -> bool:
        return self.decided_processes >= self.scope_size


def metrics_from_trace(
    trace: UnifiedTrace, scope: Optional[Iterable[ProcessId]] = None
) -> RunMetrics:
    """Metrics of any unified-schema trace.

    Time is whatever the producing layer recorded: the round number for
    round-level runs, normalised simulated time for step-level runs.
    """
    scope_set = set(range(trace.n)) if scope is None else set(scope)
    decisions = {
        p: record for p, record in trace.decision_records().items() if p in scope_set
    }
    times = [record.time for record in decisions.values()]
    rounds = [record.round for record in decisions.values()]
    return RunMetrics(
        decided_processes=len(decisions),
        scope_size=len(scope_set),
        unanimous=len({record.value for record in decisions.values()}) <= 1,
        first_decision_time=min(times) if times else None,
        last_decision_time=max(times) if times else None,
        first_decision_round=min(rounds) if rounds else None,
        last_decision_round=max(rounds) if rounds else None,
        messages_sent=trace.messages_sent,
    )


#: Backwards-compatible names: both layers now share one extractor.
metrics_from_ho_trace = metrics_from_trace
metrics_from_system_trace = metrics_from_trace


def metrics_from_des(
    simulator: EventSimulator, scope: Optional[Iterable[ProcessId]] = None
) -> RunMetrics:
    """Metrics of an event-driven (failure-detector baseline) run."""
    scope_set = set(range(simulator.n)) if scope is None else set(scope)
    decisions = {p: event for p, event in simulator.decisions.items() if p in scope_set}
    times = [event.time for event in decisions.values()]
    return RunMetrics(
        decided_processes=len(decisions),
        scope_size=len(scope_set),
        unanimous=len({event.value for event in decisions.values()}) <= 1,
        first_decision_time=min(times) if times else None,
        last_decision_time=max(times) if times else None,
        first_decision_round=None,
        last_decision_round=None,
        messages_sent=simulator.messages_sent,
    )


# --------------------------------------------------------------------------- #
# good-period statistics from streaming predicate reports
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class GoodPeriodStats:
    """Good-period statistics of one predicate, computed from its monitor report.

    The paper's good periods are exactly the runs of rounds whose per-round
    predicate condition holds (a space-uniform streak for ``P_su``, a
    kernel streak for ``P_k``, ...).  Pre-monitoring, extracting these
    numbers meant re-scanning a recorded trace; now they are a direct
    re-reading of the compact :class:`~repro.predicates.reports.PredicateReport`
    a run already streamed out, so sweeps measure good periods without
    shipping traces.
    """

    predicate: str
    rounds_observed: int
    #: rounds whose per-round good condition held (good-period rounds).
    good_rounds: int
    #: first round of the earliest good period (None if none).
    first_good_round: Optional[int]
    #: length of the longest good period, in rounds.
    longest_good_period: int
    #: length of the longest bad period, in rounds.
    longest_bad_period: int
    #: first prefix of the run on which the predicate itself held.
    first_hold_round: Optional[int]
    #: whether the predicate held on the whole run.
    holds: bool

    @property
    def good_fraction(self) -> Optional[float]:
        """Fraction of rounds inside good periods (None when nothing observed)."""
        if self.rounds_observed == 0:
            return None
        return self.good_rounds / self.rounds_observed

    @classmethod
    def from_report(cls, report: Union[PredicateReport, Mapping[str, Any]]) -> "GoodPeriodStats":
        """Build from a :class:`PredicateReport` or its JSON dict form."""
        if isinstance(report, Mapping):
            report = PredicateReport.from_json_dict(report)
        return cls(
            predicate=report.name,
            rounds_observed=report.rounds_observed,
            good_rounds=report.good_rounds,
            first_good_round=report.first_good_round,
            longest_good_period=report.longest_good_run,
            longest_bad_period=report.longest_bad_run,
            first_hold_round=report.first_hold_round,
            holds=report.holds,
        )


def good_period_stats(
    reports: Union[
        Mapping[str, Union[PredicateReport, Mapping[str, Any]]],
        Sequence[Union[PredicateReport, Mapping[str, Any]]],
    ],
) -> Dict[str, GoodPeriodStats]:
    """Good-period statistics for a batch of predicate reports, keyed by predicate.

    Accepts the shapes the stack hands around: a ``MonitorBank.reports()``
    mapping, the JSON ``predicate_reports`` dict of a scenario result or
    sweep wire record, or a plain sequence of reports.
    """
    entries = reports.values() if isinstance(reports, Mapping) else reports
    stats = [GoodPeriodStats.from_report(entry) for entry in entries]
    return {stat.predicate: stat for stat in stats}


@dataclass(frozen=True)
class AlgorithmComplexity:
    """Structural complexity of a consensus algorithm (the Section 2 comparison)."""

    name: str
    fault_model: str
    message_kinds: int
    state_variables: int
    needs_stable_storage: bool
    needs_retransmission_task: bool
    needs_failure_detector: bool
    distinct_from_crash_stop_variant: bool


def algorithm_complexity_summary() -> Dict[str, AlgorithmComplexity]:
    """The structural comparison behind Section 2.1 and Appendix A.

    The counts are derived from the implementations in this repository
    (message dataclass kinds and state variables of each process class) and
    match the structure of the published pseudo-code.
    """
    return {
        "one-third-rule": AlgorithmComplexity(
            name="OneThirdRule (HO, Algorithm 1)",
            fault_model="any benign (crash-stop, crash-recovery, omissions, loss)",
            message_kinds=1,          # the estimate
            state_variables=2,        # x_p and the decision
            needs_stable_storage=False,   # handled below the predicate interface
            needs_retransmission_task=False,
            needs_failure_detector=False,
            distinct_from_crash_stop_variant=False,
        ),
        "chandra-toueg": AlgorithmComplexity(
            name="Chandra-Toueg ◇S (Algorithm 5)",
            fault_model="crash-stop only, reliable links",
            message_kinds=5,          # estimate, newestimate, ack, nack, decide
            state_variables=5,        # estimate, ts, r, state, phase bookkeeping
            needs_stable_storage=False,
            needs_retransmission_task=False,
            needs_failure_detector=True,
            distinct_from_crash_stop_variant=False,
        ),
        "aguilera": AlgorithmComplexity(
            name="Aguilera et al. ◇Su (Algorithm 6)",
            fault_model="crash-recovery, lossy links",
            message_kinds=5,          # newround, estimate, newestimate, ack, decide
            state_variables=8,        # r, estimate, ts, decided, xmitmsg, max round, fd snapshot, acks
            needs_stable_storage=True,
            needs_retransmission_task=True,
            needs_failure_detector=True,
            distinct_from_crash_stop_variant=True,
        ),
    }


__all__ = [
    "RunMetrics",
    "UnifiedTrace",
    "metrics_from_trace",
    "metrics_from_ho_trace",
    "metrics_from_system_trace",
    "metrics_from_des",
    "GoodPeriodStats",
    "good_period_stats",
    "AlgorithmComplexity",
    "algorithm_complexity_summary",
]
