"""Run metrics and structural algorithm-complexity metrics.

Two kinds of measurements back the benchmark reports:

* *run metrics* -- decision latency, rounds needed, messages exchanged --
  extracted from recorded traces (HO machine, step simulator or DES);
* *structural metrics* -- a quantitative rendering of the paper's Section 2
  argument that the crash-recovery failure-detector algorithm (Algorithm 6)
  is far more complex than the crash-stop one (Algorithm 5), while the HO
  algorithm (Algorithm 1) is reused verbatim across fault models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Protocol

from ..core.types import DecisionRecord, ProcessId
from ..des.simulator import EventSimulator


class UnifiedTrace(Protocol):
    """What the metrics layer needs from a trace, regardless of its producer.

    Both :class:`repro.core.types.RunTrace` (round-level) and
    :class:`repro.sysmodel.trace.SystemRunTrace` (step-level) implement this:
    the unified per-round record schema of :mod:`repro.rounds.record` gives
    every executed round a decision slot and a time, so one metrics
    extractor serves both layers.
    """

    @property
    def n(self) -> int: ...

    @property
    def messages_sent(self) -> int: ...

    def decision_records(self) -> Dict[ProcessId, DecisionRecord]: ...


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one consensus run."""

    decided_processes: int
    scope_size: int
    unanimous: bool
    first_decision_time: Optional[float]
    last_decision_time: Optional[float]
    first_decision_round: Optional[int]
    last_decision_round: Optional[int]
    messages_sent: int

    @property
    def all_decided(self) -> bool:
        return self.decided_processes >= self.scope_size


def metrics_from_trace(
    trace: UnifiedTrace, scope: Optional[Iterable[ProcessId]] = None
) -> RunMetrics:
    """Metrics of any unified-schema trace.

    Time is whatever the producing layer recorded: the round number for
    round-level runs, normalised simulated time for step-level runs.
    """
    scope_set = set(range(trace.n)) if scope is None else set(scope)
    decisions = {
        p: record for p, record in trace.decision_records().items() if p in scope_set
    }
    times = [record.time for record in decisions.values()]
    rounds = [record.round for record in decisions.values()]
    return RunMetrics(
        decided_processes=len(decisions),
        scope_size=len(scope_set),
        unanimous=len({record.value for record in decisions.values()}) <= 1,
        first_decision_time=min(times) if times else None,
        last_decision_time=max(times) if times else None,
        first_decision_round=min(rounds) if rounds else None,
        last_decision_round=max(rounds) if rounds else None,
        messages_sent=trace.messages_sent,
    )


#: Backwards-compatible names: both layers now share one extractor.
metrics_from_ho_trace = metrics_from_trace
metrics_from_system_trace = metrics_from_trace


def metrics_from_des(
    simulator: EventSimulator, scope: Optional[Iterable[ProcessId]] = None
) -> RunMetrics:
    """Metrics of an event-driven (failure-detector baseline) run."""
    scope_set = set(range(simulator.n)) if scope is None else set(scope)
    decisions = {p: event for p, event in simulator.decisions.items() if p in scope_set}
    times = [event.time for event in decisions.values()]
    return RunMetrics(
        decided_processes=len(decisions),
        scope_size=len(scope_set),
        unanimous=len({event.value for event in decisions.values()}) <= 1,
        first_decision_time=min(times) if times else None,
        last_decision_time=max(times) if times else None,
        first_decision_round=None,
        last_decision_round=None,
        messages_sent=simulator.messages_sent,
    )


@dataclass(frozen=True)
class AlgorithmComplexity:
    """Structural complexity of a consensus algorithm (the Section 2 comparison)."""

    name: str
    fault_model: str
    message_kinds: int
    state_variables: int
    needs_stable_storage: bool
    needs_retransmission_task: bool
    needs_failure_detector: bool
    distinct_from_crash_stop_variant: bool


def algorithm_complexity_summary() -> Dict[str, AlgorithmComplexity]:
    """The structural comparison behind Section 2.1 and Appendix A.

    The counts are derived from the implementations in this repository
    (message dataclass kinds and state variables of each process class) and
    match the structure of the published pseudo-code.
    """
    return {
        "one-third-rule": AlgorithmComplexity(
            name="OneThirdRule (HO, Algorithm 1)",
            fault_model="any benign (crash-stop, crash-recovery, omissions, loss)",
            message_kinds=1,          # the estimate
            state_variables=2,        # x_p and the decision
            needs_stable_storage=False,   # handled below the predicate interface
            needs_retransmission_task=False,
            needs_failure_detector=False,
            distinct_from_crash_stop_variant=False,
        ),
        "chandra-toueg": AlgorithmComplexity(
            name="Chandra-Toueg ◇S (Algorithm 5)",
            fault_model="crash-stop only, reliable links",
            message_kinds=5,          # estimate, newestimate, ack, nack, decide
            state_variables=5,        # estimate, ts, r, state, phase bookkeeping
            needs_stable_storage=False,
            needs_retransmission_task=False,
            needs_failure_detector=True,
            distinct_from_crash_stop_variant=False,
        ),
        "aguilera": AlgorithmComplexity(
            name="Aguilera et al. ◇Su (Algorithm 6)",
            fault_model="crash-recovery, lossy links",
            message_kinds=5,          # newround, estimate, newestimate, ack, decide
            state_variables=8,        # r, estimate, ts, decided, xmitmsg, max round, fd snapshot, acks
            needs_stable_storage=True,
            needs_retransmission_task=True,
            needs_failure_detector=True,
            distinct_from_crash_stop_variant=True,
        ),
    }


__all__ = [
    "RunMetrics",
    "UnifiedTrace",
    "metrics_from_trace",
    "metrics_from_ho_trace",
    "metrics_from_system_trace",
    "metrics_from_des",
    "AlgorithmComplexity",
    "algorithm_complexity_summary",
]
